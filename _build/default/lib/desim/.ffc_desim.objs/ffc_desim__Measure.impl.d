lib/desim/measure.ml: Ffc_numerics Hashtbl Stats
