lib/desim/packet.ml:
