lib/desim/server.ml: Ffc_numerics Packet Qdisc Rng Sim
