lib/desim/sim.ml: Event_heap Float
