lib/desim/netsim.ml: Array Ffc_numerics Ffc_topology Float Hashtbl List Measure Network Packet Qdisc Rng Server Sim Source Vec
