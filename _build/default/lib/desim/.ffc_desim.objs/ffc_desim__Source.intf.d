lib/desim/source.mli: Ffc_numerics Packet Sim
