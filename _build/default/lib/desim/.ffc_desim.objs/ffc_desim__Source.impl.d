lib/desim/source.ml: Ffc_numerics Float Packet Rng Sim
