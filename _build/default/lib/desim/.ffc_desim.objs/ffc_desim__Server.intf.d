lib/desim/server.mli: Ffc_numerics Packet Qdisc Sim
