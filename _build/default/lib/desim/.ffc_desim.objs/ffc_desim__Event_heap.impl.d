lib/desim/event_heap.ml: Array Float Stdlib
