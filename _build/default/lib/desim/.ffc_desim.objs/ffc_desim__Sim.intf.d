lib/desim/sim.mli:
