lib/desim/packet.mli:
