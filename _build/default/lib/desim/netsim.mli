(** Packet-level simulation of a whole network (paper §2.1 made
    concrete).

    Assembles Poisson sources, exponential servers, and line latencies
    from a {!Ffc_topology.Network.t}; runs to a horizon; and reports
    time-average per-connection queue lengths at every gateway,
    end-to-end delays, and delivered throughput over the post-warmup
    window.  Used to validate the analytic Q(r) functions (experiment
    E12) and to study feedback with real delays (E13).

    The Fair Share discipline is realized exactly as §2.2 defines it:
    each packet is independently thinned into a priority level with
    probability proportional to the level's rate increment, and gateways
    run preemptive-resume priority service. *)

open Ffc_topology

type discipline =
  | Fifo
  | Fs_priority  (** Fair Share: thinning + preemptive priority. *)
  | Fair_queueing  (** Bid-based Demers–Keshav–Shenker fair queueing. *)

type result

val run :
  net:Network.t ->
  rates:float array ->
  discipline:discipline ->
  seed:int ->
  ?warmup:float ->
  horizon:float ->
  unit ->
  result
(** Simulates with per-connection Poisson rates [rates]. Statistics cover
    [(warmup, horizon)]; [warmup] defaults to 10% of the horizon.
    Raises [Invalid_argument] on negative rates, a rate-vector length
    mismatch, or [horizon <= warmup]. *)

val mean_queue : result -> gw:int -> conn:int -> float
(** Time-average number of connection [conn]'s packets at gateway [gw] —
    the simulated Q^a_i. 0 when the connection does not cross the
    gateway. *)

val total_mean_queue : result -> gw:int -> float

val delay_mean : result -> conn:int -> float
val delay_ci95 : result -> conn:int -> float
val throughput : result -> conn:int -> float
(** Delivered packets per unit time over the measurement window. *)

val window : result -> float
(** Length of the measurement window. *)
