(** Measurement collection for simulation runs.

    Tracks time-weighted per-key occupancy (the simulated counterpart of
    the model's mean queue lengths Q^a_i), end-to-end delay samples, and
    delivery counts.  [reset] discards history at the end of a warmup
    period while preserving instantaneous occupancy, so statistics cover
    only the measured window. *)

type t

val create : unit -> t

val incr : t -> key:int * int -> now:float -> unit
(** Occupancy of [key = (gateway, connection)] increased by one. *)

val decr : t -> key:int * int -> now:float -> unit

val occupancy : t -> key:int * int -> int
(** Instantaneous occupancy (0 for unseen keys). *)

val mean_occupancy : t -> key:int * int -> now:float -> float
(** Time-average occupancy since creation or the last [reset]. *)

val reset : t -> now:float -> unit
(** Restarts every time average and delay/delivery statistic at [now],
    keeping current occupancy levels. *)

val record_delay : t -> conn:int -> float -> unit

val delay_mean : t -> conn:int -> float
(** 0 when no samples. *)

val delay_ci95 : t -> conn:int -> float

val delay_count : t -> conn:int -> int

val count_delivery : t -> conn:int -> unit

val deliveries : t -> conn:int -> int

val count_drop : t -> conn:int -> unit
(** A packet of the connection was dropped (finite-buffer gateways). *)

val drops : t -> conn:int -> int
(** Drops since creation or the last [reset]. *)
