open Ffc_numerics

type t = {
  sim : Sim.t;
  rng : Rng.t;
  conn : int;
  mutable rate : float;
  classify : (Rng.t -> int) option;
  emit : Packet.t -> unit;
  mutable next_id : int;
  mutable emitted : int;
  mutable started : bool;
  mutable pending : bool;  (** An arrival event is scheduled. *)
}

let check_rate rate =
  if (not (Float.is_finite rate)) || rate < 0. then
    invalid_arg "Source: rate must be finite and non-negative"

let create ~sim ~rng ~conn ~rate ?classify ~emit () =
  check_rate rate;
  {
    sim;
    rng;
    conn;
    rate;
    classify;
    emit;
    next_id = 0;
    emitted = 0;
    started = false;
    pending = false;
  }

let rec arrival t () =
  t.pending <- false;
  let pkt = Packet.create ~id:t.next_id ~conn:t.conn ~born:(Sim.now t.sim) in
  t.next_id <- t.next_id + 1;
  t.emitted <- t.emitted + 1;
  (match t.classify with Some f -> pkt.klass <- f t.rng | None -> ());
  t.emit pkt;
  schedule_next t

and schedule_next t =
  if t.rate > 0. && not t.pending then begin
    t.pending <- true;
    Sim.schedule_after t.sim ~delay:(Rng.exponential t.rng ~rate:t.rate) (arrival t)
  end

let start t =
  if not t.started then begin
    t.started <- true;
    schedule_next t
  end

let rate t = t.rate

let set_rate t rate =
  check_rate rate;
  t.rate <- rate;
  (* Wake a stopped source; a pending arrival keeps its old draw and the
     new rate applies from the following gap. *)
  if t.started then schedule_next t

let emitted t = t.emitted
