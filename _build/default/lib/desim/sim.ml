type t = { heap : (unit -> unit) Event_heap.t; mutable clock : float }

let create () = { heap = Event_heap.create (); clock = 0. }

let now t = t.clock

let schedule t ~at thunk =
  if not (Float.is_finite at) then invalid_arg "Sim.schedule: non-finite time";
  if at < t.clock then invalid_arg "Sim.schedule: time in the past";
  Event_heap.push t.heap ~time:at thunk

let schedule_after t ~delay thunk =
  if (not (Float.is_finite delay)) || delay < 0. then
    invalid_arg "Sim.schedule_after: bad delay";
  schedule t ~at:(t.clock +. delay) thunk

let step t =
  match Event_heap.pop_min t.heap with
  | None -> false
  | Some (time, thunk) ->
    t.clock <- time;
    thunk ();
    true

let run ?until t =
  let continue () =
    match (Event_heap.peek_min t.heap, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some (time, _), Some stop -> time <= stop
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some stop when stop > t.clock -> t.clock <- stop
  | Some _ | None -> ()

let pending t = Event_heap.size t.heap
