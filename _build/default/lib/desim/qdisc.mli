(** Queue disciplines for the simulated gateways.

    Three disciplines are provided:
    - [Fifo] — arrival order, the baseline of the paper;
    - [Preemptive_priority] — serves the lowest [klass] first, preempting
      the packet in service when a strictly higher-priority packet
      arrives; combined with the Fair Share thinning of sources this
      realizes the FS discipline of §2.2 exactly;
    - [Fair_queueing] — the bid-based packet-level approximation of
      head-of-line processor sharing from Demers–Keshav–Shenker
      [Dem89], non-preemptive, which §4 discusses as the realistic
      counterpart of Fair Share.

    A [buffer] holds waiting packets; the server drives it through
    [enqueue]/[dequeue] and consults [preempts] on arrivals. *)

type t = Fifo | Preemptive_priority | Fair_queueing

type buffer

val buffer : t -> buffer

val enqueue : buffer -> Packet.t -> unit
(** Adds a packet to the waiting set.  For [Fair_queueing] this also
    assigns the packet its finish-number bid from the connection's
    previous finish number and the current virtual time. *)

val dequeue : buffer -> Packet.t option
(** Removes the next packet to serve: head of line (FIFO), lowest class
    with FCFS within class and resumed packets first
    ([Preemptive_priority]), or smallest bid ([Fair_queueing], which also
    advances the virtual time). *)

val requeue_front : buffer -> Packet.t -> unit
(** Puts a preempted packet back so it resumes before any waiting packet
    of its own class. Only meaningful for [Preemptive_priority]. *)

val preempts : t -> incoming:Packet.t -> in_service:Packet.t -> bool
(** Whether the incoming packet must preempt the one in service. *)

val waiting : buffer -> int
(** Number of packets currently buffered (excluding any in service). *)
