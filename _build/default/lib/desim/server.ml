open Ffc_numerics

type t = {
  sim : Sim.t;
  rng : Rng.t;
  mu : float;
  qdisc : Qdisc.t;
  buffer : Qdisc.buffer;
  buffer_limit : int option;
  on_drop : Packet.t -> unit;
  on_depart : Packet.t -> unit;
  mutable current : (Packet.t * float * int) option;
      (** In-service packet, its completion time, and the validity token
          of its scheduled completion event. *)
  mutable next_token : int;
}

let create ~sim ~rng ~mu ~qdisc ?buffer_limit ?(on_drop = fun _ -> ()) ~on_depart () =
  if not (mu > 0.) then invalid_arg "Server.create: mu must be positive";
  (match buffer_limit with
  | Some k when k < 1 -> invalid_arg "Server.create: buffer_limit must be >= 1"
  | Some _ | None -> ());
  {
    sim;
    rng;
    mu;
    qdisc;
    buffer = Qdisc.buffer qdisc;
    buffer_limit;
    on_drop;
    on_depart;
    current = None;
    next_token = 0;
  }

let rec start_service t (pkt : Packet.t) =
  let token = t.next_token in
  t.next_token <- token + 1;
  let service_time = pkt.work /. t.mu in
  let completion = Sim.now t.sim +. service_time in
  t.current <- Some (pkt, completion, token);
  Sim.schedule t.sim ~at:completion (fun () -> complete t token)

and complete t token =
  match t.current with
  | Some (pkt, _, tok) when tok = token ->
    t.current <- None;
    t.on_depart pkt;
    start_next t
  | Some _ | None -> () (* Stale completion of a preempted service. *)

and start_next t =
  match Qdisc.dequeue t.buffer with
  | Some pkt -> start_service t pkt
  | None -> ()

let in_system_count t =
  Qdisc.waiting t.buffer + match t.current with Some _ -> 1 | None -> 0

let inject_admitted t (pkt : Packet.t) =
  pkt.work <- Rng.exponential t.rng ~rate:1.;
  Qdisc.enqueue t.buffer pkt;
  match t.current with
  | None -> start_next t
  | Some (cur, completion, _) when Qdisc.preempts t.qdisc ~incoming:pkt ~in_service:cur ->
    (* Preempt-resume: bank the remaining work and invalidate the pending
       completion by clearing [current] before restarting. *)
    cur.work <- (completion -. Sim.now t.sim) *. t.mu;
    t.current <- None;
    Qdisc.requeue_front t.buffer cur;
    start_next t
  | Some _ -> ()

let inject t (pkt : Packet.t) =
  match t.buffer_limit with
  | Some limit when in_system_count t >= limit -> t.on_drop pkt
  | Some _ | None -> inject_admitted t pkt

let in_system = in_system_count

let busy t = t.current <> None
