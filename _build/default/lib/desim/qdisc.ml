type t = Fifo | Preemptive_priority | Fair_queueing

(* Per-class storage for the priority discipline: resumed packets stack in
   front (LIFO resume order is irrelevant as at most one packet is ever
   preempted at a time per class), normal arrivals queue FCFS. *)
type class_bucket = { mutable resumed : Packet.t list; arrivals : Packet.t Queue.t }

type buffer =
  | Fifo_buf of Packet.t Queue.t
  | Prio_buf of (int, class_bucket) Hashtbl.t
  | Fq_buf of fq_state

and fq_state = {
  bids : Packet.t Event_heap.t;  (** Keyed by finish-number bid. *)
  last_finish : (int, float) Hashtbl.t;  (** Per connection. *)
  mutable virtual_time : float;
}

let buffer = function
  | Fifo -> Fifo_buf (Queue.create ())
  | Preemptive_priority -> Prio_buf (Hashtbl.create 8)
  | Fair_queueing ->
    Fq_buf
      { bids = Event_heap.create (); last_finish = Hashtbl.create 8; virtual_time = 0. }

let bucket tbl klass =
  match Hashtbl.find_opt tbl klass with
  | Some b -> b
  | None ->
    let b = { resumed = []; arrivals = Queue.create () } in
    Hashtbl.add tbl klass b;
    b

let enqueue buf (pkt : Packet.t) =
  match buf with
  | Fifo_buf q -> Queue.add pkt q
  | Prio_buf tbl -> Queue.add pkt (bucket tbl pkt.klass).arrivals
  | Fq_buf fq ->
    let prev =
      match Hashtbl.find_opt fq.last_finish pkt.conn with Some f -> f | None -> 0.
    in
    let bid = Float.max fq.virtual_time prev +. pkt.work in
    Hashtbl.replace fq.last_finish pkt.conn bid;
    Event_heap.push fq.bids ~time:bid pkt

let dequeue buf =
  match buf with
  | Fifo_buf q -> Queue.take_opt q
  | Prio_buf tbl ->
    (* Scan classes in increasing number (decreasing priority). *)
    let best = ref None in
    Hashtbl.iter
      (fun klass b ->
        if b.resumed <> [] || not (Queue.is_empty b.arrivals) then
          match !best with
          | Some (k, _) when k <= klass -> ()
          | _ -> best := Some (klass, b))
      tbl;
    (match !best with
    | None -> None
    | Some (_, b) -> (
      match b.resumed with
      | pkt :: rest ->
        b.resumed <- rest;
        Some pkt
      | [] -> Queue.take_opt b.arrivals))
  | Fq_buf fq -> (
    match Event_heap.pop_min fq.bids with
    | None -> None
    | Some (bid, pkt) ->
      fq.virtual_time <- Float.max fq.virtual_time bid;
      Some pkt)

let requeue_front buf (pkt : Packet.t) =
  match buf with
  | Fifo_buf q ->
    (* FIFO is non-preemptive; requeue only happens if a caller misuses
       the discipline — preserve the packet anyway. *)
    Queue.add pkt q
  | Prio_buf tbl ->
    let b = bucket tbl pkt.klass in
    b.resumed <- pkt :: b.resumed
  | Fq_buf fq ->
    (* Resume with its original bid semantics: re-bid at current virtual
       time without charging a second full quantum. *)
    Event_heap.push fq.bids ~time:fq.virtual_time pkt

let preempts t ~incoming ~in_service =
  match t with
  | Fifo | Fair_queueing -> false
  | Preemptive_priority -> incoming.Packet.klass < in_service.Packet.klass

let waiting buf =
  match buf with
  | Fifo_buf q -> Queue.length q
  | Prio_buf tbl ->
    Hashtbl.fold
      (fun _ b acc -> acc + List.length b.resumed + Queue.length b.arrivals)
      tbl 0
  | Fq_buf fq -> Event_heap.size fq.bids
