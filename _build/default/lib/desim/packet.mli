(** Packets flowing through the simulated network. *)

type t = {
  id : int;  (** Globally unique, assigned by the source. *)
  conn : int;  (** Connection index within the network. *)
  born : float;  (** Creation time, for end-to-end delay measurement. *)
  mutable klass : int;
      (** Priority class for the preemptive-priority (Fair Share)
          discipline; 0 is the highest priority. Re-assigned per gateway
          by the FS thinning. Ignored by FIFO. *)
  mutable work : float;
      (** Remaining service requirement at the current gateway, in units
          of normalized work (service time = work/μ). Re-drawn at each
          gateway per the paper's Poisson-output independence
          assumption. *)
}

val create : id:int -> conn:int -> born:float -> t
(** A packet with class 0 and no work assigned yet. *)
