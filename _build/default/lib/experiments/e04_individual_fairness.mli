(** E4 — Theorem 3 and its Corollary: TSI individual feedback is
    guaranteed fair, with a unique steady state independent of the
    service discipline.

    Sweeps random topologies x random initial conditions x {FIFO, FS};
    every converged run must be fair and match the water-filling
    prediction. *)

type result = {
  trials : int;
  converged : int;
  fair : int;
  matched_prediction : int;  (** Steady state equals the construction. *)
  disciplines_agree : int;  (** FIFO and FS runs landed together. *)
}

val compute : ?trials:int -> ?seed:int -> unit -> result

val experiment : Exp_common.t
