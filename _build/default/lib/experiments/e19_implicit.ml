open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_closedloop

type result = {
  homogeneous_rates : float array;
  utilization : float;
  drop_fraction : float;
  jain : float;
  hetero_rates : float array;
  hetero_biased : bool;
}

let buffer = 20
let interval = 200.
let updates = 250

let compute ?(seed = 13) () =
  let net = Topologies.single ~mu:1. ~n:2 () in
  let homo =
    Closed_loop.run_drop_tail ~net ~buffer
      ~adjusters:(Array.make 2 (Rate_adjust.aimd ~increase:0.02 ~decrease:0.3))
      ~r0:[| 0.1; 0.3 |] ~interval ~updates ~seed ()
  in
  let hetero =
    Closed_loop.run_drop_tail ~net ~buffer
      ~adjusters:
        [|
          (* Sharp backoff (TCP-like halving) vs gentle backoff. *)
          Rate_adjust.aimd ~increase:0.02 ~decrease:0.5;
          Rate_adjust.aimd ~increase:0.02 ~decrease:0.1;
        |]
      ~r0:[| 0.2; 0.2 |] ~interval ~updates ~seed ()
  in
  let h = homo.Closed_loop.dr_mean_tail_rates in
  {
    homogeneous_rates = h;
    utilization = homo.Closed_loop.mean_utilization;
    drop_fraction = Vec.max homo.Closed_loop.drop_fraction;
    jain = Stats.jain_index h;
    hetero_rates = hetero.Closed_loop.dr_mean_tail_rates;
    hetero_biased =
      hetero.Closed_loop.dr_mean_tail_rates.(1)
      > 1.5 *. hetero.Closed_loop.dr_mean_tail_rates.(0);
  }

let run () =
  let r = compute () in
  Exp_common.table
    ~header:[ "quantity"; "value" ]
    ~rows:
      [
        [ "buffer (packets)"; string_of_int buffer ];
        [ "identical AIMD: tail-mean rates"; Vec.to_string r.homogeneous_rates ];
        [ "utilization (delivered / mu)"; Exp_common.fnum r.utilization ];
        [ "worst drop fraction"; Exp_common.fnum r.drop_fraction ];
        [ "Jain index of averages"; Exp_common.fnum r.jain ];
        [ "halving vs gentle backoff"; Vec.to_string r.hetero_rates ];
        [ "gentler backoff wins"; Exp_common.fbool r.hetero_biased ];
      ]
  ^ "\nDrops alone, with no explicit signal, keep the gateway controlled\n\
     (high utilization, small loss) and identical sources roughly fair in\n\
     the long-term average — but a source that backs off less steals from\n\
     one that backs off more, exactly the aggregate-feedback robustness\n\
     failure of \xc2\xa73.4 transplanted to Jacobson-style implicit feedback.\n"

let experiment =
  {
    Exp_common.id = "E19";
    title = "Implicit feedback: drop-driven AIMD (Jacobson-style)";
    paper_ref = "\xc2\xa71 (implicit signals), \xc2\xa73.4";
    run;
  }
