(** E14 — Binary feedback and AIMD: the Chiu–Jain regime the paper
    contrasts itself against (§1, §4).

    With a single congestion bit (B = 1{C ≥ C*}) there is no steady
    state: the system oscillates forever.  The paper asserts that in this
    setting linear-increase multiplicative-decrease nevertheless delivers
    long-term averages that are both TSI and guaranteed fair — but that
    "the period of oscillation grows linearly with the server rate"
    (its fundamental drawback versus the continuous-signal designs).

    This experiment runs AIMD against a binary aggregate signal at a
    single gateway for a sweep of server rates μ and measures the limit
    cycle: its period, the per-connection long-term averages, and how
    both scale with μ. *)

type row = {
  mu : float;
  period : int;  (** Mean steps per sawtooth (between multiplicative decreases). *)
  avg_rates : float array;  (** Long-term average of each connection. *)
  avg_total_over_mu : float;  (** Should be ~constant across μ (TSI). *)
  fair_averages : bool;  (** Averages equal across connections. *)
}

val compute : ?mus:float list -> unit -> row list

val experiment : Exp_common.t
