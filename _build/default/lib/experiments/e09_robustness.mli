(** E9 — Theorem 5 and the robustness design matrix.

    Part 1 samples the Theorem 5 criterion Q_i(r) ≤ r_i/(μ − N·r_i) on
    random rate vectors: Fair Share never violates it, FIFO often does.

    Part 2 runs the §3.4 heterogeneous population (β = 0.3 vs 0.7) under
    all three designs and compares each connection's steady throughput to
    its reservation baseline: only individual feedback + Fair Share is
    robust. *)

type matrix_row = {
  design : string;
  steady : float array;
  baselines : float array;
  robust : bool;
}

type result = {
  fifo_violation_rate : float;
  fs_violation_rate : float;
  matrix : matrix_row list;
}

val compute : ?trials:int -> ?seed:int -> unit -> result

val experiment : Exp_common.t
