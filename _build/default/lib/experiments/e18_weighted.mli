(** E18 — Weighted Fair Share: service differentiation from the same
    controller (extension).

    Generalizing the FS priority decomposition to per-connection weights
    (measure greediness by φ = r/w, split levels weight-proportionally)
    keeps every structural property the paper needs — conservation,
    isolation, the triangular queue dependence — and changes only the
    steady state: TSI individual feedback now converges to rates
    proportional to the weights, r_i = w_i·ρ_SS·μ/Σw.  Bandwidth shares
    become an operator knob while fairness-as-contracted, robustness, and
    stability survive untouched. *)

type result = {
  weights : float array;
  steady : float array;
  predicted : float array;  (** w_i ρ_SS μ / Σw. *)
  proportional : bool;  (** Steady rates ∝ weights. *)
}

(** Note: the Theorem-4 triangular structure of weighted FS is exercised
    as a locality property in the weighted_fair_share test suite rather
    than here — at the weight-proportional steady state every normalized
    rate is tied, putting the Jacobian exactly on the MIN/MAX kinks. *)

val compute : ?weights:float array -> unit -> result

val experiment : Exp_common.t
