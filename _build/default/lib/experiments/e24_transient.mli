(** E24 — Removing the instant-equilibration assumption (extension;
    paper §2.1 modeling assumption, §2.5 caveat).

    The queues get fluid dynamics (equilibrium = the exact FIFO formula)
    and the rates evolve continuously at a configurable [gain].  Three
    findings:

    1. {e Validation}: for moderate gains the coupled system settles at
       exactly the water-filling fair point — the paper's instant-
       equilibration results are the slow-controller limit of the
       transient model.
    2. {e Phase lag}: a single gateway is stable at every tested gain
       (two poles cannot oscillate), but a 3-hop path accumulates enough
       queue phase lag to oscillate at high gain.
    3. {e TSI breaks transiently}: the critical gain grows roughly like
       μ² — a controller tuned to a fast network overdrives a slow one.
       Steady states are time-scale invariant; transient stability is
       not, which is exactly why the paper flags the asynchrony/transient
       caveat. *)

type validation_row = { gain : float; settled : bool; at_fair_point : bool }

type phase_row = { hops : int; gain : float; settled : bool }

type tsi_row = { mu : float; critical_gain : float }

type result = {
  validation : validation_row list;
  phase : phase_row list;
  tsi : tsi_row list;
}

val compute : unit -> result

val experiment : Exp_common.t
