open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  gateways : int;
  connections : int;
  converged : bool;
  fair : bool;
  matched_prediction : bool;
  steps : int;
  wall_seconds : float;
}

let compute ?(seed = 99) ?(sizes = [ (4, 8); (8, 20); (16, 48); (24, 80) ]) () =
  let rng = Rng.create seed in
  List.map
    (fun (gateways, connections) ->
      let net =
        Topologies.random ~rng ~latency_range:(0., 0.) ~gateways ~connections
          ~max_path:4 ()
      in
      let n = Network.num_connections net in
      let controller =
        Controller.homogeneous ~config:Feedback.individual_fair_share
          ~adjuster:Scenario.standard_adjuster ~n
      in
      let r0 = Scenario.random_start ~rng ~net ~lo:0. ~hi:0.2 in
      let predicted =
        Steady_state.fair ~signal:Signal.linear_fractional
          ~b_ss:Scenario.default_beta ~net
      in
      let t0 = Unix.gettimeofday () in
      let outcome = Controller.run ~max_steps:120_000 controller ~net ~r0 in
      let wall_seconds = Unix.gettimeofday () -. t0 in
      match outcome with
      | Controller.Converged { steady; steps } ->
        {
          gateways;
          connections;
          converged = true;
          fair =
            Fairness.is_fair ~tol:1e-4 Feedback.individual_fair_share ~net
              ~rates:steady;
          matched_prediction = Vec.approx_equal ~tol:1e-4 steady predicted;
          steps;
          wall_seconds;
        }
      | _ ->
        {
          gateways;
          connections;
          converged = false;
          fair = false;
          matched_prediction = false;
          steps = 0;
          wall_seconds;
        })
    sizes

let run () =
  let rows = compute () in
  let header =
    [ "gateways"; "connections"; "converged"; "fair"; "= water-filling";
      "steps"; "wall (s)" ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.gateways;
          string_of_int r.connections;
          Exp_common.fbool r.converged;
          Exp_common.fbool r.fair;
          Exp_common.fbool r.matched_prediction;
          string_of_int r.steps;
          Exp_common.fnum r.wall_seconds;
        ])
      rows
  in
  "Random topologies, individual feedback + Fair Share, random starts:\n\n"
  ^ Exp_common.table ~header ~rows:body
  ^ "\nTheorem 3's guarantee is size-independent: every run lands exactly\n\
     on the unique water-filling allocation, in well under a second even\n\
     at 24 gateways / 80 connections.\n"

let experiment =
  {
    Exp_common.id = "E23";
    title = "Scale stress: random networks, dozens of connections";
    paper_ref = "Theorems 2-3 at scale";
    run;
  }
