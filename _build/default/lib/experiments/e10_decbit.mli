(** E10 — §4's analysis of the DECbit/Jacobson algorithm families.

    (a) Window form f = (1−b)η/d − βbr on a dumbbell whose two access
    links have very different latencies: throughput is biased against the
    long-RTT connection, with rate ratio ≈ inverse delay ratio.

    (b) Rate form f = (1−b)η − βbr: the same topology converges to equal
    rates (guaranteed fair) — but scaling every μ by 10 does {e not}
    scale the steady state by 10 (not TSI). *)

type result = {
  window_rates : float array;  (** (short RTT, long RTT). *)
  window_delay_ratio : float;  (** d_long / d_short at the steady state. *)
  window_rate_ratio : float;  (** r_short / r_long — should track it. *)
  rate_rates : float array;
  rate_fair : bool;
  rate_scaled : float array;  (** Steady state with μ ×10. *)
  rate_tsi_violation : float;
      (** ‖r(10μ) − 10·r(μ)‖∞ / ‖10·r(μ)‖∞ — far from 0 for non-TSI. *)
}

val compute : unit -> result

val experiment : Exp_common.t
