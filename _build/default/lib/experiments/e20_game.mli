(** E20 — The gateway game: making greed work ([She89], the companion
    paper Fair Share comes from; paper §2.2 cites it as FS's origin).

    Drop flow control entirely: let each source pick its rate selfishly
    at a shared gateway.  The service discipline decides whose problem
    congestion becomes:

    - under FIFO, delay is common property, and iterated best response
      ends with sources {e shut out at rate zero} — the surviving
      monopolists deter entry because any positive rate would earn the
      entrant negative utility.  Which sources survive depends on the
      order of play: equilibria are plentiful and unfair.
    - under Fair Share, a source's delay is driven by its own fair load,
      so greed is internalized: every start converges with all sources
      active, and for moderate N the equilibrium coincides exactly with
      the symmetric social optimum.

    This is the game-theoretic counterpart of the paper's robustness
    story. Two utility families are played: U = r − c·W (linear, admits
    closed-form anchors like the symmetric FIFO equilibrium
    (μ−√c)/N) and U = log(1+r) − c·W (concave, makes exclusion socially
    wasteful and is where FIFO's exclusion is starkest). *)

type row = {
  utility : string;
  n : int;
  discipline : string;
  start : string;
  nash_rates : float array;
  verified : bool;  (** [Nash.is_equilibrium] holds. *)
  welfare : float;
  optimum_welfare : float;  (** Best symmetric profile. *)
  excluded : int;  (** Sources at rate 0 in the equilibrium. *)
}

val compute : ?ns:int list -> unit -> row list

val experiment : Exp_common.t
