(** E12 — Validation of the analytic model (§2.2) by packet-level
    simulation.

    The paper's entire analysis rests on the closed-form queue functions
    Q(r).  This experiment removes the "instant equilibration" idealization:
    a discrete-event simulation with Poisson sources and exponential
    servers measures time-average per-connection queues under FIFO, Fair
    Share (thinning + preemptive priority), and packet-level Fair
    Queueing, and compares them to the formulas. *)

type row = {
  discipline : string;
  conn : int;
  rate : float;
  analytic : float;
  simulated : float;
  rel_error : float;
}

val compute : ?horizon:float -> ?seed:int -> unit -> row list

val experiment : Exp_common.t
