(** E16 — Ablation: the signal function B(C) selects the operating
    point.

    The paper's results hold for {e any} signal function with B(0)=0,
    B(∞)=1, dB/dC > 0; what B actually chooses is the steady congestion
    C_SS = B⁻¹(b_SS) — i.e. the utilization/delay operating point of
    every bottleneck.  This ablation runs the same TSI algorithm
    (β = 0.5) under several signal families and compares the predicted
    utilization ρ_SS = g⁻¹(C_SS) and per-packet sojourn to what the
    dynamics converge to — all of them fair and TSI, none of them at the
    same operating point. *)

type row = {
  signal : string;
  c_ss : float;  (** Predicted steady congestion B⁻¹(0.5). *)
  rho_predicted : float;
  rho_measured : float;  (** Converged utilization at a single gateway. *)
  sojourn : float;  (** Per-packet time in system at that point. *)
  fair : bool;
}

val compute : unit -> row list

val experiment : Exp_common.t
