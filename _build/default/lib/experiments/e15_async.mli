(** E15 — Asynchronous update schedules (extension; cf. §2.5 and the
    Mosely line of work the paper cites).

    The model's updates are synchronous.  Here each connection updates
    only with probability p each step (an i.i.d. Bernoulli schedule), and
    we check that TSI individual feedback still converges to the same
    unique fair steady state — the paper's fairness results do not hinge
    on synchrony, only its stability analysis does. *)

type row = {
  p : float;  (** Per-step update probability. *)
  design : string;
  converged : bool;
  reached_fair_point : bool;  (** Landed on the water-filling state. *)
  steps : int;
}

val compute : ?seed:int -> ?ps:float list -> unit -> row list

val experiment : Exp_common.t
