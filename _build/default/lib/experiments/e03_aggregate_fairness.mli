(** E3 — Theorem 2: aggregate feedback is potentially but never
    guaranteed fair.

    Runs TSI aggregate feedback at a single gateway from many random
    initial rate vectors: every run converges (to Σr = βμ) but each
    keeps its initial spread — a manifold of unfair steady states — while
    the water-filling construction yields the one fair point. *)

type result = {
  steady_states : float array array;  (** One converged vector per start. *)
  totals : float array;  (** Σr of each — all equal βμ. *)
  fair_count : int;  (** How many random runs landed fair (generically 0). *)
  jain_min : float;
  jain_max : float;
  constructed_fair : float array;  (** The Theorem-2 construction. *)
  constructed_is_steady : bool;
  constructed_is_fair : bool;
}

val compute : ?runs:int -> ?seed:int -> unit -> result

val experiment : Exp_common.t
