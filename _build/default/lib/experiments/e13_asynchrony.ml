open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = { tau : int; max_stable_eta : float }

let delayed_run ~eta ~tau ~n ~steps =
  let net = Topologies.single ~mu:1. ~n () in
  let config = Feedback.individual_fifo in
  let adjuster = Rate_adjust.additive ~eta ~beta:0.5 in
  (* History buffer of past rate vectors for the delayed signal. *)
  let fair = 0.5 /. float_of_int n in
  let r0 = Array.init n (fun i -> fair *. (1. +. (0.1 *. float_of_int (i + 1)))) in
  let hist = Array.make (tau + 1) r0 in
  let r = ref r0 in
  for k = 0 to steps - 1 do
    (* Slot (k+1) mod (tau+1) currently holds r(k - tau): written tau+1
       steps ago and about to be overwritten with r(k+1). *)
    let delayed = hist.((k + 1) mod (tau + 1)) in
    let b = Feedback.signals config ~net ~rates:delayed in
    let d = Feedback.delays config ~net ~rates:delayed in
    let next =
      Array.mapi
        (fun i ri -> Float.max 0. (ri +. Rate_adjust.eval adjuster ~r:ri ~b:b.(i) ~d:d.(i)))
        !r
    in
    hist.((k + 1) mod (tau + 1)) <- next;
    r := next
  done;
  (* Converged iff the last steps are quiet around a fixed point. *)
  let last = !r in
  let next =
    let b = Feedback.signals config ~net ~rates:last in
    let d = Feedback.delays config ~net ~rates:last in
    Array.mapi
      (fun i ri -> Float.max 0. (ri +. Rate_adjust.eval adjuster ~r:ri ~b:b.(i) ~d:d.(i)))
      last
  in
  if Vec.dist_inf next last <= 1e-6 *. (1. +. Vec.norm_inf last) then `Converged
  else `Oscillating

let etas = [ 0.05; 0.1; 0.2; 0.3; 0.5; 0.8; 1.2; 1.6 ]

let compute ?(taus = [ 0; 1; 2; 4; 8; 16 ]) () =
  List.map
    (fun tau ->
      let max_stable_eta =
        List.fold_left
          (fun acc eta ->
            match delayed_run ~eta ~tau ~n:4 ~steps:6_000 with
            | `Converged -> Float.max acc eta
            | `Oscillating -> acc)
          0. etas
      in
      { tau; max_stable_eta })
    taus

let run () =
  let rows = compute () in
  let header = [ "feedback delay tau (steps)"; "largest stable eta (tested grid)" ] in
  let body =
    List.map
      (fun r -> [ string_of_int r.tau; Exp_common.fnum r.max_stable_eta ])
      rows
  in
  Exp_common.table ~header ~rows:body
  ^ "\nThe stable-gain region shrinks as feedback ages — quantifying the\n\
     caveat of \xc2\xa72.5 that the synchronous model's stability results are\n\
     optimistic about real (delayed, asynchronous) networks.\n"

let experiment =
  {
    Exp_common.id = "E13";
    title = "Stability under delayed feedback (extension)";
    paper_ref = "\xc2\xa72.5 (stated future work)";
    run;
  }
