open Ffc_numerics
open Ffc_topology
open Ffc_core

type validation_row = { gain : float; settled : bool; at_fair_point : bool }
type phase_row = { hops : int; gain : float; settled : bool }
type tsi_row = { mu : float; critical_gain : float }

type result = {
  validation : validation_row list;
  phase : phase_row list;
  tsi : tsi_row list;
}

let config = Feedback.individual_fifo
let dt = 0.025
let t_end = 600.

let compute () =
  (* 1. Validation at a single gateway. *)
  let n = 4 in
  let net1 = Topologies.single ~mu:1. ~n () in
  let adj1 = Array.make n Scenario.standard_adjuster in
  let r01 = Array.init n (fun i -> 0.02 +. (0.02 *. float_of_int i)) in
  let fair = Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net:net1 in
  let validation =
    List.map
      (fun gain ->
        let r = Transient.run ~dt ~t_end ~config ~net:net1 ~adjusters:adj1 ~gain ~r0:r01 () in
        match r.Transient.outcome with
        | Transient.Settled rates ->
          { gain; settled = true; at_fair_point = Vec.approx_equal ~tol:1e-3 rates fair }
        | Transient.Oscillating _ -> { gain; settled = false; at_fair_point = false })
      [ 0.1; 1.; 5. ]
  in
  (* 2. Phase lag: single hop vs 3 hops. *)
  let phase =
    List.concat_map
      (fun hops ->
        let net = Topologies.chain ~mu:1. ~hops ~conns:2 () in
        let adjusters = Array.make 2 Scenario.standard_adjuster in
        List.map
          (fun gain ->
            let r =
              Transient.run ~dt ~t_end ~config ~net ~adjusters ~gain ~r0:[| 0.05; 0.1 |] ()
            in
            {
              hops;
              gain;
              settled =
                (match r.Transient.outcome with
                | Transient.Settled _ -> true
                | Transient.Oscillating _ -> false);
            })
          [ 5.; 20.; 80. ])
      [ 1; 3 ]
  in
  (* 3. Critical gain vs server speed on the 3-hop chain. *)
  let tsi =
    List.map
      (fun mu ->
        let net = Topologies.chain ~mu ~hops:3 ~conns:2 () in
        let adjusters = Array.make 2 Scenario.standard_adjuster in
        let r0 = [| 0.05 *. mu; 0.1 *. mu |] in
        let critical_gain =
          Transient.critical_gain ~lo:1. ~hi:400. ~ratio:1.1 ~dt ~t_end ~config ~net
            ~adjusters ~r0 ()
        in
        { mu; critical_gain })
      [ 0.5; 1.; 2. ]
  in
  { validation; phase; tsi }

let run () =
  let r = compute () in
  Exp_common.section "1. slow-controller limit recovers the theory (single gateway, N=4)"
  ^ Exp_common.table
      ~header:[ "gain"; "settled"; "at water-filling point" ]
      ~rows:
        (List.map
           (fun (v : validation_row) ->
             [ Exp_common.fnum v.gain; Exp_common.fbool v.settled;
               Exp_common.fbool v.at_fair_point ])
           r.validation)
  ^ "\n"
  ^ Exp_common.section "2. phase lag: path length buys instability"
  ^ Exp_common.table
      ~header:[ "hops"; "gain"; "settled" ]
      ~rows:
        (List.map
           (fun (p : phase_row) ->
             [ string_of_int p.hops; Exp_common.fnum p.gain; Exp_common.fbool p.settled ])
           r.phase)
  ^ "\n"
  ^ Exp_common.section "3. critical gain vs server speed (3-hop chain)"
  ^ Exp_common.table
      ~header:[ "mu"; "critical gain" ]
      ~rows:
        (List.map
           (fun t -> [ Exp_common.fnum t.mu; Exp_common.fnum t.critical_gain ])
           r.tsi)
  ^ "\nThe queues' own dynamics change nothing at moderate gains — the\n\
     system lands exactly where Theorem 2 says — but the stability margin\n\
     is set by the queue-equilibration speed: it grows roughly like mu^2\n\
     and shrinks with path length.  Steady states are time-scale\n\
     invariant; transient stability is not.  This quantifies the caveat\n\
     the paper enters at \xc2\xa72.5.\n"

let experiment =
  {
    Exp_common.id = "E24";
    title = "Transient fluid model: instant equilibration removed";
    paper_ref = "\xc2\xa72.1 assumption / \xc2\xa72.5 caveat";
    run;
  }
