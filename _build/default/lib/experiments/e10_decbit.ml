open Ffc_numerics
open Ffc_topology
open Ffc_core

type result = {
  window_rates : float array;
  window_delay_ratio : float;
  window_rate_ratio : float;
  rate_rates : float array;
  rate_fair : bool;
  rate_scaled : float array;
  rate_tsi_violation : float;
}

(* Dumbbell: shared bottleneck (index 0) plus two private access gateways
   with very different line latencies. *)
let net_with_latencies lat_short lat_long =
  Network.create
    ~gateways:
      [|
        { Network.gw_name = "bottleneck"; mu = 1.; latency = 0. };
        { Network.gw_name = "short-access"; mu = 10.; latency = lat_short };
        { Network.gw_name = "long-access"; mu = 10.; latency = lat_long };
      |]
    ~connections:
      [|
        { Network.conn_name = "short"; path = [ 1; 0 ] };
        { Network.conn_name = "long"; path = [ 2; 0 ] };
      |]

let converge adjuster net =
  let n = Network.num_connections net in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster ~n in
  match Controller.run ~max_steps:120_000 c ~net ~r0:(Array.make n 0.01) with
  | Controller.Converged { steady; _ } -> steady
  | _ -> [||]

let compute () =
  let net = net_with_latencies 0.5 8. in
  (* (a) Window form. *)
  let window = Rate_adjust.decbit_window ~eta:0.05 ~beta:0.5 in
  let window_rates = converge window net in
  let delays = Feedback.delays Feedback.individual_fifo ~net ~rates:window_rates in
  let window_delay_ratio = delays.(1) /. delays.(0) in
  let window_rate_ratio = window_rates.(0) /. window_rates.(1) in
  (* (b) Rate form. *)
  let rate_form = Rate_adjust.fair_rate_limd ~eta:0.05 ~beta:0.5 in
  let rate_rates = converge rate_form net in
  let rate_fair =
    Array.length rate_rates = 2
    && Float.abs (rate_rates.(0) -. rate_rates.(1)) < 1e-4 *. (1. +. rate_rates.(0))
  in
  let rate_scaled = converge rate_form (Network.scale_mu net 10.) in
  let rate_tsi_violation =
    if Array.length rate_scaled = 0 || Array.length rate_rates = 0 then Float.nan
    else begin
      let target = Vec.scale 10. rate_rates in
      Vec.dist_inf rate_scaled target /. Vec.norm_inf target
    end
  in
  {
    window_rates;
    window_delay_ratio;
    window_rate_ratio;
    rate_rates;
    rate_fair;
    rate_scaled;
    rate_tsi_violation;
  }

let run () =
  let r = compute () in
  Exp_common.section "(a) window LIMD  f = (1-b) eta/d - beta b r"
  ^ Exp_common.table
      ~header:[ "quantity"; "value" ]
      ~rows:
        [
          [ "steady rates (short, long RTT)"; Vec.to_string r.window_rates ];
          [ "delay ratio d_long/d_short"; Exp_common.fnum r.window_delay_ratio ];
          [ "rate ratio r_short/r_long"; Exp_common.fnum r.window_rate_ratio ];
        ]
  ^ "\nThe long-RTT connection is throttled roughly in proportion to its\n\
     delay — the latency unfairness the paper attributes to window LIMD.\n\n"
  ^ Exp_common.section "(b) rate LIMD  f = (1-b) eta - beta b r"
  ^ Exp_common.table
      ~header:[ "quantity"; "value" ]
      ~rows:
        [
          [ "steady rates"; Vec.to_string r.rate_rates ];
          [ "equal despite latency gap (fair)"; Exp_common.fbool r.rate_fair ];
          [ "steady rates with mu x10"; Vec.to_string r.rate_scaled ];
          [ "relative TSI violation"; Exp_common.fnum r.rate_tsi_violation ];
        ]
  ^ "\nThe rate form is guaranteed fair, but its steady state barely moves\n\
     when every line gets 10x faster: not time-scale invariant — exactly\n\
     the Section 4 diagnosis.\n"

let experiment =
  {
    Exp_common.id = "E10";
    title = "DECbit window vs rate adjustment (Section 4)";
    paper_ref = "\xc2\xa74";
    run;
  }
