(** E17 — Closing the loop: the paper's predictions against a live
    packet-level system (extension).

    All preceding experiments compute signals from the analytic queue
    functions.  Here the full control loop runs over the discrete-event
    simulator — signals come from measured time-average queues, delays
    from delivered packets, and rate updates happen in simulated time —
    removing the instant-equilibration and noiseless-signal
    idealizations of §2.5 simultaneously.

    Part 1: a homogeneous population under individual feedback must still
    find the water-filling fair point (within stochastic tolerance).
    Part 2: the §3.4 heterogeneity story must survive reality — aggregate
    starves the timid connection, FIFO under-serves it, Fair Share holds
    it at its reservation baseline. *)

type homo_row = {
  discipline : string;
  measured : float array;  (** Tail-mean rates from the closed loop. *)
  predicted : float array;  (** Water-filling. *)
  max_rel_err : float;
}

type hetero_row = {
  design : string;
  timid : float;
  greedy : float;
  baseline_timid : float;
  timid_meets_baseline : bool;
}

type result = { homogeneous : homo_row list; heterogeneous : hetero_row list }

val compute : ?interval:float -> ?updates:int -> ?seed:int -> unit -> result

val experiment : Exp_common.t
