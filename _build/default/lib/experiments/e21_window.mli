(** E21 — Window-based control: where the latency unfairness really
    lives (extension of §4).

    §4 models DECbit's window algorithm in rate space; here the window
    dynamics run natively, with rates induced through the Little's-law
    fixed point r = w/d(r).  On a dumbbell whose two access links differ
    16× in latency:

    - the DECbit window adjuster (constant window increase) converges to
      {e equal windows}, hence rates inversely proportional to RTT — the
      §4 unfairness in its natural habitat;
    - the TSI form η(β−b) transplanted to window space converges to
      {e unequal windows} that induce exactly fair rates — window
      control per se is not the culprit; the constant increase is.

    The experiment also demonstrates window flow control's intrinsic
    self-limitation: absurdly large fixed windows still induce rates
    strictly below capacity. *)

type result = {
  decbit_windows : float array;
  decbit_rates : float array;
  decbit_rate_ratio : float;  (** short-RTT rate / long-RTT rate. *)
  delay_ratio : float;  (** long RTT / short RTT at the DECbit point. *)
  tsi_windows : float array;
  tsi_rates : float array;
  tsi_fair : bool;  (** Rates equal despite the latency gap. *)
  giant_window_utilization : float;
      (** Bottleneck load induced by windows of 2000 packets — < 1. *)
}

val compute : unit -> result

val experiment : Exp_common.t
