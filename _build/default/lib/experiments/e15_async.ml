open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  p : float;
  design : string;
  converged : bool;
  reached_fair_point : bool;
  steps : int;
}

let n = 3

let compute ?(seed = 41) ?(ps = [ 1.0; 0.5; 0.2 ]) () =
  let net = Topologies.single ~mu:1. ~n () in
  let predicted = Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net in
  let rng = Rng.create seed in
  List.concat_map
    (fun p ->
      List.map
        (fun (design, config) ->
          let c = Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster ~n in
          let r0 = [| 0.02; 0.1; 0.35 |] in
          match Controller.run_async ~p ~rng:(Rng.split rng) c ~net ~r0 with
          | Controller.Converged { steady; steps } ->
            {
              p;
              design;
              converged = true;
              reached_fair_point = Vec.approx_equal ~tol:1e-5 steady predicted;
              steps;
            }
          | _ -> { p; design; converged = false; reached_fair_point = false; steps = 0 })
        [
          ("individual+fifo", Feedback.individual_fifo);
          ("individual+fair-share", Feedback.individual_fair_share);
        ])
    ps

let run () =
  let rows = compute () in
  let header = [ "update prob p"; "design"; "converged"; "fair point"; "steps" ] in
  let body =
    List.map
      (fun r ->
        [
          Exp_common.fnum r.p;
          r.design;
          Exp_common.fbool r.converged;
          Exp_common.fbool r.reached_fair_point;
          string_of_int r.steps;
        ])
      rows
  in
  Exp_common.table ~header ~rows:body
  ^ "\nEvery randomized schedule converges to the same water-filling fair\n\
     point as the synchronous iteration (p = 1), just more slowly: the\n\
     uniqueness and fairness of the individual-feedback steady state do\n\
     not depend on synchrony.\n"

let experiment =
  {
    Exp_common.id = "E15";
    title = "Asynchronous updates reach the same fair point (extension)";
    paper_ref = "\xc2\xa72.5 / [Mos84] context";
    run;
  }
