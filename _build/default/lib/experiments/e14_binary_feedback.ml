open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  mu : float;
  period : int;
  avg_rates : float array;
  avg_total_over_mu : float;
  fair_averages : bool;
}

let n = 2
let increase = 0.01
let decrease = 0.125

(* Bit set when the total queue reaches 1, i.e. rho >= 1/2. *)
let config =
  Feedback.make ~style:Congestion.Aggregate ~signal:(Signal.binary 1.)
    ~discipline:Ffc_queueing.Service.fifo ()

(* The orbit is a sawtooth: additive climb until the bit sets, one
   multiplicative decrease, repeat.  Exact recurrence takes many teeth
   (the crossing phase drifts), so the meaningful "period of oscillation"
   is the mean tooth length — steps per multiplicative decrease —
   measured over a long post-transient window. *)
let compute ?(mus = [ 1.; 2.; 4.; 8. ]) () =
  List.map
    (fun mu ->
      let net = Topologies.single ~mu ~n () in
      let c =
        Controller.homogeneous ~config ~adjuster:(Rate_adjust.aimd ~increase ~decrease)
          ~n
      in
      let transient = 5_000 and window = 20_000 in
      let r = ref [| 0.05; 0.2 |] in
      for _ = 1 to transient do
        r := Controller.step c ~net !r
      done;
      let decreases = ref 0 in
      let sums = Array.make n 0. in
      for _ = 1 to window do
        let next = Controller.step c ~net !r in
        if Vec.sum next < Vec.sum !r then incr decreases;
        Array.iteri (fun i x -> sums.(i) <- sums.(i) +. x) next;
        r := next
      done;
      let avg_rates = Array.map (fun s -> s /. float_of_int window) sums in
      let period =
        if !decreases = 0 then 0
        else int_of_float (Float.round (float_of_int window /. float_of_int !decreases))
      in
      {
        mu;
        period;
        avg_rates;
        avg_total_over_mu = Vec.sum avg_rates /. mu;
        fair_averages =
          Float.abs (avg_rates.(0) -. avg_rates.(1)) < 1e-3 *. (1. +. avg_rates.(0));
      })
    mus

let run () =
  let rows = compute () in
  let header =
    [ "mu"; "sawtooth period (steps)"; "avg rates"; "avg total / mu"; "fair averages" ]
  in
  let body =
    List.map
      (fun r ->
        [
          Exp_common.fnum r.mu;
          string_of_int r.period;
          Vec.to_string r.avg_rates;
          Exp_common.fnum r.avg_total_over_mu;
          Exp_common.fbool r.fair_averages;
        ])
      rows
  in
  Printf.sprintf
    "AIMD (+%g, x%g) against a binary aggregate signal (bit when total\n\
     queue >= 1), two connections from an unequal start:\n\n" increase
    (1. -. decrease)
  ^ Exp_common.table ~header ~rows:body
  ^ "\nAs [Chi89] predicts and the paper relays: no steady state — the\n\
     system lands on a limit cycle whose long-term averages are fair and\n\
     scale with mu (TSI in the mean), but whose period grows linearly\n\
     with the server rate.  That growing period is the cost of binary\n\
     feedback that the paper's continuous signals avoid.\n"

let experiment =
  {
    Exp_common.id = "E14";
    title = "Binary feedback + AIMD oscillates (Chiu-Jain contrast)";
    paper_ref = "\xc2\xa71/\xc2\xa74 ([Chi89] discussion)";
    run;
  }
