open Ffc_queueing
open Ffc_topology
open Ffc_desim

type row = {
  discipline : string;
  conn : int;
  rate : float;
  analytic : float;
  simulated : float;
  rel_error : float;
}

let rates = [| 0.15; 0.3; 0.45 |]
let mu = 1.5

let compute ?(horizon = 60_000.) ?(seed = 5) () =
  let net = Topologies.single ~mu ~n:(Array.length rates) () in
  let cases =
    [
      ("fifo", Netsim.Fifo, Some (Fifo.queue_lengths ~mu rates));
      ("fair-share", Netsim.Fs_priority, Some (Fair_share.queue_lengths ~mu rates));
      (* FQ approximates FS; compare against the FS formula as reference. *)
      ("fair-queueing", Netsim.Fair_queueing, Some (Fair_share.queue_lengths ~mu rates));
    ]
  in
  List.concat_map
    (fun (name, discipline, analytic) ->
      let result = Netsim.run ~net ~rates ~discipline ~seed ~horizon () in
      Array.to_list
        (Array.mapi
           (fun i rate ->
             let simulated = Netsim.mean_queue result ~gw:0 ~conn:i in
             let a = match analytic with Some q -> q.(i) | None -> Float.nan in
             {
               discipline = name;
               conn = i;
               rate;
               analytic = a;
               simulated;
               rel_error = Float.abs (simulated -. a) /. Float.max 0.05 a;
             })
           rates))
    cases

let run () =
  let rows = compute () in
  let header =
    [ "discipline"; "conn"; "rate"; "analytic Q"; "simulated Q"; "rel err" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.discipline;
          string_of_int r.conn;
          Exp_common.fnum r.rate;
          Exp_common.fnum r.analytic;
          Exp_common.fnum r.simulated;
          Exp_common.fnum r.rel_error;
        ])
      rows
  in
  Printf.sprintf
    "Single gateway, mu = %g, Poisson rates %s, horizon 6e4 (10%% warmup):\n\n" mu
    (Ffc_numerics.Vec.to_string rates)
  ^ Exp_common.table ~header ~rows:body
  ^ "\nFIFO and Fair Share simulations should match their formulas to a few\n\
     percent; packet-level Fair Queueing tracks the Fair Share reference\n\
     (same design intuition, not the same mathematics — \xc2\xa72.2).\n"

let experiment =
  {
    Exp_common.id = "E12";
    title = "Packet-level validation of the analytic queue model";
    paper_ref = "\xc2\xa72.2 model assumptions";
    run;
  }
