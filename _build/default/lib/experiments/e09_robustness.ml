open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core

type matrix_row = {
  design : string;
  steady : float array;
  baselines : float array;
  robust : bool;
}

type result = {
  fifo_violation_rate : float;
  fs_violation_rate : float;
  matrix : matrix_row list;
}

let compute ?(trials = 500) ?(seed = 31) () =
  let fifo_violation_rate =
    Robustness.criterion_violation_rate Service.fifo ~rng:(Rng.create seed) ~n:4
      ~mu:2. ~trials
  in
  let fs_violation_rate =
    Robustness.criterion_violation_rate Service.fair_share ~rng:(Rng.create seed) ~n:4
      ~mu:2. ~trials
  in
  let net = Topologies.single ~mu:1. ~n:2 () in
  let adjusters = [| Scenario.timid_adjuster; Scenario.greedy_adjuster |] in
  let baselines =
    Robustness.baselines ~signal:Signal.linear_fractional ~b_ss:[| 0.3; 0.7 |] ~net
  in
  let matrix =
    List.filter_map
      (fun d ->
        let c = Controller.create ~config:d.Analysis.config ~adjusters in
        match Controller.run c ~net ~r0:[| 0.2; 0.2 |] with
        | Controller.Converged { steady; _ } ->
          Some
            {
              design = d.Analysis.label;
              steady;
              baselines;
              robust = Robustness.is_robust_outcome ~baselines steady;
            }
        | _ -> None)
      Analysis.designs
  in
  { fifo_violation_rate; fs_violation_rate; matrix }

let run () =
  let r = compute () in
  let part1 =
    Exp_common.section "Theorem 5 criterion  Q_i(r) <= r_i/(mu - N r_i)"
    ^ Exp_common.table
        ~header:[ "discipline"; "violation rate (random r)" ]
        ~rows:
          [
            [ "fifo"; Exp_common.fnum r.fifo_violation_rate ];
            [ "fair-share"; Exp_common.fnum r.fs_violation_rate ];
          ]
  in
  let part2 =
    Exp_common.section
      "Heterogeneity matrix (beta = 0.3 vs 0.7, single gateway, mu = 1)"
    ^ Exp_common.table
        ~header:
          [ "design"; "steady (timid, greedy)"; "baselines"; "robust" ]
        ~rows:
          (List.map
             (fun row ->
               [
                 row.design;
                 Vec.to_string row.steady;
                 Vec.to_string row.baselines;
                 Exp_common.fbool row.robust;
               ])
             r.matrix)
  in
  part1 ^ "\n" ^ part2
  ^ "\nExpected: FS never violates the criterion and is the only robust\n\
     design; aggregate starves the timid connection entirely; FIFO leaves\n\
     it a nonzero share below its reservation baseline.\n"

let experiment =
  {
    Exp_common.id = "E9";
    title = "Robustness under heterogeneity (Theorem 5)";
    paper_ref = "Theorem 5, \xc2\xa73.4";
    run;
  }
