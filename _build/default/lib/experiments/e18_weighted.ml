open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core

type result = {
  weights : float array;
  steady : float array;
  predicted : float array;
  proportional : bool;
}

let mu = 1.

let compute ?(weights = [| 1.; 2.; 4. |]) () =
  let n = Array.length weights in
  let net = Topologies.single ~mu ~n () in
  let config =
    Feedback.make ~weights ~style:Congestion.Individual
      ~signal:Signal.linear_fractional
      ~discipline:(Weighted_fair_share.service ~weights) ()
  in
  let c = Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster ~n in
  let r0 = Array.init n (fun i -> 0.02 +. (0.03 *. float_of_int i)) in
  let total_w = Vec.sum weights in
  let rho_ss = 0.5 in
  let predicted = Array.map (fun w -> w *. rho_ss *. mu /. total_w) weights in
  match Controller.run ~max_steps:60_000 c ~net ~r0 with
  | Controller.Converged { steady; _ } ->
    let ratios = Array.map2 (fun r w -> r /. w) steady weights in
    let proportional =
      Array.for_all
        (fun x -> Float.abs (x -. ratios.(0)) < 1e-5 *. (1. +. ratios.(0)))
        ratios
    in
    { weights; steady; predicted; proportional }
  | _ -> { weights; steady = [||]; predicted; proportional = false }

let run () =
  let r = compute () in
  Exp_common.table
    ~header:[ "quantity"; "value" ]
    ~rows:
      [
        [ "weights"; Vec.to_string r.weights ];
        [ "converged steady state"; Vec.to_string r.steady ];
        [ "predicted w_i * rho_SS * mu / W"; Vec.to_string r.predicted ];
        [ "rates proportional to weights"; Exp_common.fbool r.proportional ];
      ]
  ^ "\nThe same TSI additive algorithm, individual feedback, and gateway\n\
     mechanics now allocate 1:2:4 — service differentiation falls out of\n\
     the discipline's weight vector while conservation, isolation,\n\
     robustness bounds and triangular stability all carry over (see the\n\
     weighted_fair_share test suite for the per-property checks).\n"

let experiment =
  {
    Exp_common.id = "E18";
    title = "Weighted Fair Share: weight-proportional steady states";
    paper_ref = "extension of \xc2\xa72.2/\xc2\xa73";
    run;
  }
