(** E2 — Theorem 1: time-scale invariance.

    Converges the same network under (a) server rates scaled by c and
    (b) latencies stretched 100x, for a TSI algorithm (additive) and two
    non-TSI comparators (fair-rate LIMD and the DECbit window form).
    A TSI algorithm must scale its steady state linearly with c and
    ignore latencies; the comparators must fail the respective test. *)

type row = {
  algorithm : string;
  scale : float;  (** Server-rate scaling factor applied. *)
  steady : float array;
  scales_linearly : bool;  (** r(cμ) = c·r(μ) within tolerance. *)
  latency_invariant : bool;
}

val compute : unit -> row list

val experiment : Exp_common.t
