(** E19 — Implicit feedback: packet drops as the congestion signal
    (extension; paper §1's description of Jacobson's algorithm).

    "The TCP feedback flow control algorithm of Jacobson … uses packet
    drops as an implicit feedback signal."  Here gateways are drop-tail
    FIFOs with a finite buffer and {e no} explicit signalling; each
    source runs AIMD on the binary did-I-lose-a-packet-this-window
    indicator.  The run must (a) control congestion — bounded queues,
    utilization high but below collapse, small loss rate — and (b) show
    rough long-term fairness between identical sources, while (c) a
    heterogeneous pair (different multiplicative-decrease factors)
    reproduces aggregate feedback's bias toward the greedier source,
    since drops signal aggregate congestion. *)

type result = {
  homogeneous_rates : float array;  (** Tail-mean rates, identical AIMD. *)
  utilization : float;
  drop_fraction : float;  (** Max over connections. *)
  jain : float;
  hetero_rates : float array;  (** Gentle-decrease vs sharp-decrease pair. *)
  hetero_biased : bool;  (** The gentler-backoff source gets more. *)
}

val compute : ?seed:int -> unit -> result

val experiment : Exp_common.t
