(** E13 — Beyond the paper: feedback delay (the asynchrony the paper
    flags as open in §2.5).

    The model assumes each step's signal reflects the current rates.  Here
    the signal is computed from the rates τ steps in the past —
    r(t+1) = max(0, r(t) + f(r(t), b(r(t−τ)), d)) — and we measure, for
    each delay τ, the largest gain η that still converges.  Delay shrinks
    the stability margin, which is why the paper's synchronous stability
    results are optimistic for real networks. *)

type row = {
  tau : int;
  max_stable_eta : float;  (** Largest tested η that converges. *)
}

val delayed_run :
  eta:float -> tau:int -> n:int -> steps:int -> [ `Converged | `Oscillating ]
(** One delayed-feedback run at a single gateway with individual FIFO
    feedback, from a mildly asymmetric start. *)

val compute : ?taus:int list -> unit -> row list

val experiment : Exp_common.t
