(** E23 — Scale stress: the theory holds (and the implementation stays
    fast) on networks far larger than the paper's examples.

    Random topologies with tens of gateways and dozens of connections:
    TSI individual feedback must still converge to the water-filling
    allocation, stay fair, and do so in interactive time. *)

type row = {
  gateways : int;
  connections : int;
  converged : bool;
  fair : bool;
  matched_prediction : bool;
  steps : int;
  wall_seconds : float;
}

val compute : ?seed:int -> ?sizes:(int * int) list -> unit -> row list

val experiment : Exp_common.t
