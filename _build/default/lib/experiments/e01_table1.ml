open Ffc_queueing

let rates = [| 1.; 2.; 4.; 7. |]

let compute () = Fair_share.decomposition rates

let run () =
  let d = compute () in
  let levels = [ "A"; "B"; "C"; "D" ] in
  let header = "connection" :: List.map (fun l -> "level " ^ l) levels @ [ "sum" ] in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i row ->
           let cells =
             Array.to_list
               (Array.map
                  (fun x -> if x = 0. then "-" else Exp_common.fnum x)
                  row)
           in
           (string_of_int (i + 1) :: cells)
           @ [ Exp_common.fnum (Array.fold_left ( +. ) 0. row) ])
         d)
  in
  let symbolic =
    "Paper's symbolic Table 1 (r1 <= r2 <= r3 <= r4):\n\
    \  conn 1: r1  -      -      -\n\
    \  conn 2: r1  r2-r1  -      -\n\
    \  conn 3: r1  r2-r1  r3-r2  -\n\
    \  conn 4: r1  r2-r1  r3-r2  r4-r3\n\n"
  in
  symbolic
  ^ Printf.sprintf "Instantiated at r = (1, 2, 4, 7):\n\n%s"
      (Exp_common.table ~header ~rows)
  ^ "\nEach row sums to the connection's rate; level A carries every\n\
     connection at the smallest rate, realizing the FS protection.\n"

let experiment =
  {
    Exp_common.id = "E1";
    title = "Fair Share priority decomposition";
    paper_ref = "Table 1, \xc2\xa72.2";
    run;
  }
