(** E8 — §3.4's starvation dynamic: under aggregate feedback, a
    connection with a lower steady-state congestion signal (a "timid"
    algorithm) is driven to zero throughput by a "greedy" peer.

    Two connections share one gateway; β_timid = 0.3 < β_greedy = 0.7.
    The report shows the rate trajectories and the final allocation
    r_timid → 0, r_greedy → value pinned by B(g(ρ)) = β_greedy. *)

type result = {
  trajectory : float array array;  (** Per step, the two rates. *)
  final : float array;
  predicted_greedy : float;  (** ρ with B(g(ρ)) = 0.7 — here 0.7. *)
}

val compute : ?steps:int -> unit -> result

val experiment : Exp_common.t
