(** E11 — §3.4's closing claim: robust TSI individual feedback with Fair
    Share beats the reservation-based alternative on queueing delay "by
    at least a factor of N^a at each gateway".

    At the homogeneous fair point the comparison is exact: FS sojourn is
    g(ρ)/(ρμ) while a dedicated μ/N server at the same per-connection
    rate gives N/(μ(1−ρ)) — the ratio is exactly N. *)

type row = {
  n : int;
  fs_sojourn : float;
  reservation_sojourn : float;
  ratio : float;  (** reservation / FS — should equal N. *)
}

val compute : ?ns:int list -> unit -> row list

val experiment : Exp_common.t
