(** E1 — Reproduces Table 1: the Fair Share priority decomposition for
    four connections with increasing rates. *)

val rates : float array
(** The concrete rates used (1, 2, 4, 7 — any increasing quadruple
    instantiates the paper's symbolic table). *)

val compute : unit -> float array array
(** The decomposition matrix: rows = connections, columns = priority
    levels A, B, C, D. *)

val experiment : Exp_common.t
