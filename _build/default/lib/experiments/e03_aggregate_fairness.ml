open Ffc_numerics
open Ffc_topology
open Ffc_core

type result = {
  steady_states : float array array;
  totals : float array;
  fair_count : int;
  jain_min : float;
  jain_max : float;
  constructed_fair : float array;
  constructed_is_steady : bool;
  constructed_is_fair : bool;
}

let n = 4

let compute ?(runs = 20) ?(seed = 7) () =
  let net = Topologies.single ~mu:1. ~n () in
  let rng = Rng.create seed in
  let controller =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:Scenario.standard_adjuster ~n
  in
  let steady_states =
    Array.init runs (fun _ ->
        let r0 = Scenario.random_start ~rng ~net ~lo:0. ~hi:0.3 in
        match Controller.run controller ~net ~r0 with
        | Controller.Converged { steady; _ } -> steady
        | _ -> [||])
    |> Array.to_list
    |> List.filter (fun s -> Array.length s > 0)
    |> Array.of_list
  in
  let totals = Array.map Vec.sum steady_states in
  let fair_count =
    Array.fold_left
      (fun acc s ->
        if Fairness.is_fair Feedback.aggregate_fifo ~net ~rates:s then acc + 1 else acc)
      0 steady_states
  in
  let jains = Array.map Fairness.jain steady_states in
  let constructed_fair =
    Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:Scenario.default_beta ~net
  in
  {
    steady_states;
    totals;
    fair_count;
    jain_min = Array.fold_left Float.min 1. jains;
    jain_max = Array.fold_left Float.max 0. jains;
    constructed_fair;
    constructed_is_steady =
      Controller.steady_state ~tol:1e-7 controller ~net constructed_fair;
    constructed_is_fair =
      Fairness.is_fair Feedback.aggregate_fifo ~net ~rates:constructed_fair;
  }

let run () =
  let r = compute () in
  let header = [ "start#"; "steady state"; "total"; "jain" ] in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i s ->
           [
             string_of_int i;
             Vec.to_string s;
             Exp_common.fnum r.totals.(i);
             Exp_common.fnum (Fairness.jain s);
           ])
         r.steady_states)
  in
  Exp_common.table ~header ~rows
  ^ Printf.sprintf
      "\n\
       All runs converge and every total equals beta*mu = 0.5: the steady\n\
       states form the manifold { Sum r_i = 0.5 }.  Fair outcomes among %d\n\
       random starts: %d (Jain index spread %.4f .. %.4f).\n\n\
       Theorem 2(2) construction: %s\n\
      \  is a steady state: %s;  is fair: %s\n"
      (Array.length r.steady_states)
      r.fair_count r.jain_min r.jain_max
      (Vec.to_string r.constructed_fair)
      (Exp_common.fbool r.constructed_is_steady)
      (Exp_common.fbool r.constructed_is_fair)

let experiment =
  {
    Exp_common.id = "E3";
    title = "Aggregate feedback: potentially, never guaranteed, fair";
    paper_ref = "Theorem 2, \xc2\xa73.2";
    run;
  }
