open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core

type row = {
  signal : string;
  c_ss : float;
  rho_predicted : float;
  rho_measured : float;
  sojourn : float;
  fair : bool;
}

let n = 2
let mu = 1.

let families =
  [
    Signal.linear_fractional;
    Signal.scaled 0.25;
    Signal.scaled 4.;
    Signal.power 2.;
    Signal.exponential 0.5;
    Signal.exponential 2.;
  ]

let compute () =
  let net = Topologies.single ~mu ~n () in
  List.map
    (fun signal ->
      let config =
        Feedback.make ~style:Congestion.Individual ~signal ~discipline:Service.fifo ()
      in
      let c =
        Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster ~n
      in
      let c_ss = Signal.inverse signal 0.5 in
      let rho_predicted = Mm1.g_inv c_ss in
      match Controller.run ~max_steps:60_000 c ~net ~r0:[| 0.01; 0.21 |] with
      | Controller.Converged { steady; _ } ->
        {
          signal = Signal.name signal;
          c_ss;
          rho_predicted;
          rho_measured = Vec.sum steady /. mu;
          sojourn = Mm1.sojourn_time ~mu ~rate:(Vec.sum steady);
          fair = Fairness.is_fair config ~net ~rates:steady;
        }
      | _ ->
        {
          signal = Signal.name signal;
          c_ss;
          rho_predicted;
          rho_measured = Float.nan;
          sojourn = Float.nan;
          fair = false;
        })
    families

let run () =
  let rows = compute () in
  let header =
    [ "signal B(C)"; "C_SS"; "rho predicted"; "rho measured"; "sojourn"; "fair" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.signal;
          Exp_common.fnum r.c_ss;
          Exp_common.fnum r.rho_predicted;
          Exp_common.fnum r.rho_measured;
          Exp_common.fnum r.sojourn;
          Exp_common.fbool r.fair;
        ])
      rows
  in
  "Same TSI algorithm (additive, beta = 0.5), individual feedback, FIFO,\n\
   single gateway — only the signal function varies:\n\n"
  ^ Exp_common.table ~header ~rows:body
  ^ "\nEvery family converges to a fair, TSI steady state, but the signal\n\
     function decides where on the utilization/delay curve the network\n\
     operates: an aggressive B (scaled 0.25) settles at low utilization\n\
     and low delay, a lenient one (scaled 4) at high utilization and high\n\
     delay.  The paper's design axes are orthogonal to this knob.\n"

let experiment =
  {
    Exp_common.id = "E16";
    title = "Ablation: signal function = operating-point knob";
    paper_ref = "\xc2\xa72.3.1 (B(C) assumptions)";
    run;
  }
