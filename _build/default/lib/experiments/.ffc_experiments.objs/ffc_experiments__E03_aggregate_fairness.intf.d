lib/experiments/e03_aggregate_fairness.mli: Exp_common
