lib/experiments/e11_delay.mli: Exp_common
