lib/experiments/e21_window.ml: Array Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology Float Network Printf Vec Window
