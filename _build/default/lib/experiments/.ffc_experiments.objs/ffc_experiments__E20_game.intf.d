lib/experiments/e20_game.mli: Exp_common
