lib/experiments/e16_signal_ablation.mli: Exp_common
