lib/experiments/e24_transient.ml: Array Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology List Scenario Signal Steady_state Topologies Transient Vec
