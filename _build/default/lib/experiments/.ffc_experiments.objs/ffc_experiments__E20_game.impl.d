lib/experiments/e20_game.ml: Array Exp_common Ffc_game Ffc_numerics Ffc_queueing List Nash Service Utility Vec
