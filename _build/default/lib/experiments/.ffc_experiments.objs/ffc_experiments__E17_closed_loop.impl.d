lib/experiments/e17_closed_loop.ml: Array Closed_loop Congestion Exp_common Ffc_closedloop Ffc_core Ffc_numerics Ffc_topology Float List Robustness Scenario Signal Steady_state Topologies Vec
