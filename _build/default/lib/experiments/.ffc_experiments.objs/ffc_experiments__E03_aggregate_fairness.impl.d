lib/experiments/e03_aggregate_fairness.ml: Array Controller Exp_common Fairness Feedback Ffc_core Ffc_numerics Ffc_topology Float List Printf Rng Scenario Signal Steady_state Topologies Vec
