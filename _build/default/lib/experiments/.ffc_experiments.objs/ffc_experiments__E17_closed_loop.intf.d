lib/experiments/e17_closed_loop.mli: Exp_common
