lib/experiments/e23_scale.mli: Exp_common
