lib/experiments/e21_window.mli: Exp_common
