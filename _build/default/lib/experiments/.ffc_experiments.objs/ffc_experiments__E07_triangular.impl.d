lib/experiments/e07_triangular.ml: Array Complex Controller Eigen Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology Float Jacobian Printf Rate_adjust Rng Scenario Topologies
