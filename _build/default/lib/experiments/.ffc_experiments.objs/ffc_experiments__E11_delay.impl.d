lib/experiments/e11_delay.ml: Array Exp_common Ffc_queueing List Mm1 Service
