lib/experiments/e15_async.ml: Controller Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology List Rng Scenario Signal Steady_state Topologies Vec
