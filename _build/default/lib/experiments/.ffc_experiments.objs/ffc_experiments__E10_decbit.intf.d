lib/experiments/e10_decbit.mli: Exp_common
