lib/experiments/e18_weighted.ml: Array Congestion Controller Exp_common Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology Float Scenario Signal Topologies Vec Weighted_fair_share
