lib/experiments/e18_weighted.mli: Exp_common
