lib/experiments/e08_starvation.ml: Array Ascii_plot Controller Exp_common Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology Printf Scenario Signal Topologies
