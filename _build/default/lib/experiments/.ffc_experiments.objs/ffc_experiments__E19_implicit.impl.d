lib/experiments/e19_implicit.ml: Array Closed_loop Exp_common Ffc_closedloop Ffc_core Ffc_numerics Ffc_topology Rate_adjust Stats Topologies Vec
