lib/experiments/e12_validation.mli: Exp_common
