lib/experiments/e05_stability.ml: Array Complex Controller Eigen Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology Jacobian List Printf Rate_adjust Topologies
