lib/experiments/e22_gain.mli: Exp_common
