lib/experiments/e02_tsi.ml: Array Controller Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology List Network Rate_adjust Topologies Vec
