lib/experiments/e15_async.mli: Exp_common
