lib/experiments/e09_robustness.ml: Analysis Controller Exp_common Ffc_core Ffc_numerics Ffc_queueing Ffc_topology List Rng Robustness Scenario Service Signal Topologies Vec
