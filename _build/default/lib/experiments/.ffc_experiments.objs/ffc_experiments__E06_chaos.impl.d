lib/experiments/e06_chaos.ml: Array Ascii_plot Congestion Controller Dynamics Exp_common Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology Float List Printf Rate_adjust Signal Topologies
