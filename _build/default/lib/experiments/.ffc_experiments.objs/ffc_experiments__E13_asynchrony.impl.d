lib/experiments/e13_asynchrony.ml: Array Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology Float List Rate_adjust Topologies Vec
