lib/experiments/e22_gain.ml: Analysis Array Complex Controller Eigen Exp_common Ffc_core Ffc_numerics Ffc_topology Jacobian List Rate_adjust Topologies
