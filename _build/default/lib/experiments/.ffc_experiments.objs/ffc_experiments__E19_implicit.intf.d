lib/experiments/e19_implicit.mli: Exp_common
