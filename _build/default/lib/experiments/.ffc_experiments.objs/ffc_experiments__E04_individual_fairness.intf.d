lib/experiments/e04_individual_fairness.mli: Exp_common
