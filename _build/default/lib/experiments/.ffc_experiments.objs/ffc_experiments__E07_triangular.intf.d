lib/experiments/e07_triangular.mli: Exp_common
