lib/experiments/e14_binary_feedback.ml: Array Congestion Controller Exp_common Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology Float List Printf Rate_adjust Signal Topologies Vec
