lib/experiments/e02_tsi.mli: Exp_common
