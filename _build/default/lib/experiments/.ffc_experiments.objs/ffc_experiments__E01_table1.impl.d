lib/experiments/e01_table1.ml: Array Exp_common Fair_share Ffc_queueing List Printf
