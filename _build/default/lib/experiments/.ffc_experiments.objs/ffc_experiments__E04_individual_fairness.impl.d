lib/experiments/e04_individual_fairness.ml: Controller Exp_common Fairness Feedback Ffc_core Ffc_numerics Ffc_topology List Network Rng Scenario Signal Steady_state Topologies Vec
