lib/experiments/e24_transient.mli: Exp_common
