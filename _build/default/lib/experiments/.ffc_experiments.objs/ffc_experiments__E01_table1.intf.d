lib/experiments/e01_table1.mli: Exp_common
