lib/experiments/e05_stability.mli: Exp_common
