lib/experiments/e12_validation.ml: Array Exp_common Fair_share Ffc_desim Ffc_numerics Ffc_queueing Ffc_topology Fifo Float List Netsim Printf Topologies
