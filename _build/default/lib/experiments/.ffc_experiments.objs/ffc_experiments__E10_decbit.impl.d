lib/experiments/e10_decbit.ml: Array Controller Exp_common Feedback Ffc_core Ffc_numerics Ffc_topology Float Network Rate_adjust Vec
