lib/experiments/e08_starvation.mli: Exp_common
