lib/experiments/e13_asynchrony.mli: Exp_common
