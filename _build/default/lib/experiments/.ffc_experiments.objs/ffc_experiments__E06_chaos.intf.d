lib/experiments/e06_chaos.mli: Exp_common
