lib/experiments/e14_binary_feedback.mli: Exp_common
