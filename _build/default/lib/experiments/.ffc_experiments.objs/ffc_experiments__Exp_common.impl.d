lib/experiments/exp_common.ml: Float List Printf Stdlib String
