lib/experiments/e09_robustness.mli: Exp_common
