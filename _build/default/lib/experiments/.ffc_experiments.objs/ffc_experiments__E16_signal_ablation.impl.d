lib/experiments/e16_signal_ablation.ml: Congestion Controller Exp_common Fairness Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology Float List Mm1 Scenario Service Signal Topologies Vec
