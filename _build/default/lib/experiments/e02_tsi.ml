open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  algorithm : string;
  scale : float;
  steady : float array;
  scales_linearly : bool;
  latency_invariant : bool;
}

let base_net = Topologies.parking_lot ~mu:1. ~latency:0.1 ~hops:2 ()

let converge adjuster net =
  let n = Network.num_connections net in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster ~n in
  match Controller.run ~max_steps:60_000 c ~net ~r0:(Array.make n 0.01) with
  | Controller.Converged { steady; _ } -> Some steady
  | Controller.Cycle _ | Controller.Diverged _ | Controller.No_convergence _ -> None

let algorithms =
  [
    ("additive (TSI)", Rate_adjust.additive ~eta:0.1 ~beta:0.5);
    ("fair-rate LIMD", Rate_adjust.fair_rate_limd ~eta:0.05 ~beta:0.5);
    ("DECbit window", Rate_adjust.decbit_window ~eta:0.05 ~beta:0.5);
  ]

let scales = [ 0.5; 2.; 10. ]

let compute () =
  List.concat_map
    (fun (name, adjuster) ->
      match converge adjuster base_net with
      | None -> []
      | Some base ->
        let latency_invariant =
          match
            converge adjuster
              (Network.with_latencies base_net
                 (Array.make (Network.num_gateways base_net) 10.))
          with
          | Some steady -> Vec.approx_equal ~tol:1e-4 steady base
          | None -> false
        in
        List.map
          (fun c ->
            let scaled_net = Network.scale_mu base_net c in
            let steady, scales_linearly =
              match converge adjuster scaled_net with
              | Some steady ->
                (steady, Vec.approx_equal ~tol:1e-4 steady (Vec.scale c base))
              | None -> ([||], false)
            in
            { algorithm = name; scale = c; steady; scales_linearly; latency_invariant })
          scales)
    algorithms

let run () =
  let rows = compute () in
  let header =
    [ "algorithm"; "mu scale"; "steady state"; "r(c*mu)=c*r(mu)"; "latency-inv" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.algorithm;
          Exp_common.fnum r.scale;
          (if Array.length r.steady = 0 then "(no convergence)"
           else Vec.to_string r.steady);
          Exp_common.fbool r.scales_linearly;
          Exp_common.fbool r.latency_invariant;
        ])
      rows
  in
  Exp_common.table ~header ~rows:body
  ^ "\nExpected per Theorem 1: only the additive algorithm passes both\n\
     columns; fair-rate LIMD is latency-invariant but does not scale;\n\
     the DECbit window form fails both.\n"

let experiment =
  {
    Exp_common.id = "E2";
    title = "Time-scale invariance (Theorem 1)";
    paper_ref = "Theorem 1, \xc2\xa73.1, \xc2\xa74";
    run;
  }
