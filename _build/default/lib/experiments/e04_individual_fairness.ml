open Ffc_numerics
open Ffc_topology
open Ffc_core

type result = {
  trials : int;
  converged : int;
  fair : int;
  matched_prediction : int;
  disciplines_agree : int;
}

let compute ?(trials = 12) ?(seed = 11) () =
  let rng = Rng.create seed in
  let converged = ref 0 and fair = ref 0 and matched = ref 0 and agree = ref 0 in
  for _ = 1 to trials do
    let net = Topologies.random ~rng ~latency_range:(0., 0.) ~gateways:3
        ~connections:4 ~max_path:2 () in
    let n = Network.num_connections net in
    let r0 = Scenario.random_start ~rng ~net ~lo:0. ~hi:0.4 in
    let predicted =
      Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:Scenario.default_beta
        ~net
    in
    let run config =
      let c = Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster ~n in
      match Controller.run ~max_steps:60_000 c ~net ~r0 with
      | Controller.Converged { steady; _ } -> Some (config, steady)
      | _ -> None
    in
    let outcomes =
      List.filter_map run [ Feedback.individual_fifo; Feedback.individual_fair_share ]
    in
    List.iter
      (fun (config, steady) ->
        incr converged;
        if Fairness.is_fair ~tol:1e-4 config ~net ~rates:steady then incr fair;
        if Vec.approx_equal ~tol:1e-4 steady predicted then incr matched)
      outcomes;
    match outcomes with
    | [ (_, a); (_, b) ] -> if Vec.approx_equal ~tol:1e-4 a b then incr agree
    | _ -> ()
  done;
  {
    trials;
    converged = !converged;
    fair = !fair;
    matched_prediction = !matched;
    disciplines_agree = !agree;
  }

let run () =
  let r = compute () in
  let header = [ "metric"; "count" ] in
  let rows =
    [
      [ "random (topology, start) trials"; string_of_int r.trials ];
      [ "converged runs (x2 disciplines)"; string_of_int r.converged ];
      [ "fair steady states"; string_of_int r.fair ];
      [ "matched water-filling prediction"; string_of_int r.matched_prediction ];
      [ "FIFO and FS agreed"; string_of_int r.disciplines_agree ];
    ]
  in
  Exp_common.table ~header ~rows
  ^ "\nExpected per Theorem 3 + Corollary: every converged run is fair,\n\
     equals the unique water-filling steady state, and is identical\n\
     across service disciplines.\n"

let experiment =
  {
    Exp_common.id = "E4";
    title = "Individual feedback: guaranteed fair, unique steady state";
    paper_ref = "Theorem 3 + Corollary, \xc2\xa73.2";
    run;
  }
