open Ffc_queueing

type row = {
  n : int;
  fs_sojourn : float;
  reservation_sojourn : float;
  ratio : float;
}

let compute ?(ns = [ 2; 4; 8; 16; 32 ]) () =
  let mu = 1. and rho_ss = 0.5 in
  List.map
    (fun n ->
      let rate = rho_ss *. mu /. float_of_int n in
      let rates = Array.make n rate in
      let fs_sojourn = (Service.sojourn_times Service.fair_share ~mu rates).(0) in
      let reservation_sojourn =
        Mm1.sojourn_time ~mu:(mu /. float_of_int n) ~rate
      in
      { n; fs_sojourn; reservation_sojourn; ratio = reservation_sojourn /. fs_sojourn })
    ns

let run () =
  let rows = compute () in
  let header =
    [ "N"; "FS sojourn"; "reservation sojourn"; "ratio (paper: >= N)" ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          Exp_common.fnum r.fs_sojourn;
          Exp_common.fnum r.reservation_sojourn;
          Exp_common.fnum r.ratio;
        ])
      rows
  in
  "Fair steady state at rho_SS = 1/2, mu = 1: each connection sends\n\
   rho*mu/N; the reservation baseline serves the same rate on a dedicated\n\
   mu/N server.\n\n"
  ^ Exp_common.table ~header ~rows:body
  ^ "\nThe statistical-multiplexing advantage of the shared robust gateway\n\
     is exactly a factor of N here, matching the paper's bound.\n"

let experiment =
  {
    Exp_common.id = "E11";
    title = "Queueing-delay advantage over reservations";
    paper_ref = "\xc2\xa73.4 (closing claim)";
    run;
  }
