open Ffc_numerics
open Ffc_queueing
open Ffc_game

type row = {
  utility : string;
  n : int;
  discipline : string;
  start : string;
  nash_rates : float array;
  verified : bool;
  welfare : float;
  optimum_welfare : float;
  excluded : int;
}

let mu = 1.

let utilities =
  [
    ("r - 0.01W", Utility.linear ~delay_cost:0.01);
    ("log(1+r) - 0.02W", Utility.log_throughput ~delay_cost:0.02);
  ]

let compute ?(ns = [ 2; 4; 8 ]) () =
  List.concat_map
    (fun (uname, u) ->
      List.concat_map
        (fun n ->
          List.concat_map
            (fun (dname, svc) ->
              let _, optimum_welfare = Nash.symmetric_optimum svc u ~mu ~n in
              List.filter_map
                (fun (sname, r0) ->
                  match Nash.solve svc u ~mu ~n ~r0 with
                  | Nash.Equilibrium { rates; _ } ->
                    Some
                      {
                        utility = uname;
                        n;
                        discipline = dname;
                        start = sname;
                        nash_rates = rates;
                        verified = Nash.is_equilibrium svc u ~mu ~rates;
                        welfare = Nash.welfare svc u ~mu ~rates;
                        optimum_welfare;
                        excluded =
                          Array.fold_left
                            (fun acc r -> if r = 0. then acc + 1 else acc)
                            0 rates;
                      }
                  | Nash.No_convergence _ -> None)
                [
                  ("equal", Array.make n 0.1);
                  ( "spread",
                    Array.init n (fun i -> 0.05 +. (0.02 *. float_of_int i)) );
                ])
            [ ("fifo", Service.fifo); ("fair-share", Service.fair_share) ])
        ns)
    utilities

let run () =
  let rows = compute () in
  let header =
    [ "utility"; "N"; "discipline"; "start"; "shut out"; "verified"; "welfare";
      "sym. optimum"; "min rate"; "max rate" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.utility;
          string_of_int r.n;
          r.discipline;
          r.start;
          string_of_int r.excluded;
          Exp_common.fbool r.verified;
          Exp_common.fnum r.welfare;
          Exp_common.fnum r.optimum_welfare;
          Exp_common.fnum (Vec.min r.nash_rates);
          Exp_common.fnum (Vec.max r.nash_rates);
        ])
      rows
  in
  "Greedy sources at one gateway (mu = 1), iterated best response:\n\n"
  ^ Exp_common.table ~header ~rows:body
  ^ "\nFIFO: runs routinely end with sources shut out at rate zero — always\n\
     under the concave utility, where half the sources are excluded (the\n\
     survivors deter entry: any positive rate would earn the entrant\n\
     negative utility) — and both the winners and the welfare depend on\n\
     the order of play.  Fair Share: nobody is ever excluded, every start\n\
     converges to the same allocation, and with linear utility at N = 2\n\
     or 4 the equilibrium is exactly the symmetric social optimum — greed\n\
     made harmless by the service discipline, the [She89] result the\n\
     paper builds on.\n"

let experiment =
  {
    Exp_common.id = "E20";
    title = "The gateway game: greed under FIFO vs Fair Share";
    paper_ref = "[She89] (origin of FS, cited \xc2\xa72.2)";
    run;
  }
