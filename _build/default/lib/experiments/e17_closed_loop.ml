open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_closedloop

type homo_row = {
  discipline : string;
  measured : float array;
  predicted : float array;
  max_rel_err : float;
}

type hetero_row = {
  design : string;
  timid : float;
  greedy : float;
  baseline_timid : float;
  timid_meets_baseline : bool;
}

type result = { homogeneous : homo_row list; heterogeneous : hetero_row list }

let signal = Signal.linear_fractional

let compute ?(interval = 400.) ?(updates = 150) ?(seed = 2) () =
  let n = 3 in
  let net = Topologies.single ~mu:1. ~n () in
  let predicted = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  let homogeneous =
    List.map
      (fun (name, discipline) ->
        let r =
          Closed_loop.run ~net ~discipline ~style:Congestion.Individual ~signal
            ~adjusters:(Array.make n Scenario.standard_adjuster)
            ~r0:(Array.make n 0.05) ~interval ~updates ~seed ()
        in
        let rel =
          Array.map2
            (fun m p -> Float.abs (m -. p) /. p)
            r.Closed_loop.mean_tail_rates predicted
        in
        {
          discipline = name;
          measured = r.Closed_loop.mean_tail_rates;
          predicted;
          max_rel_err = Array.fold_left Float.max 0. rel;
        })
      [ ("individual+fifo", Closed_loop.Fifo);
        ("individual+fair-share", Closed_loop.Fs_priority) ]
  in
  let net2 = Topologies.single ~mu:1. ~n:2 () in
  let adjusters = [| Scenario.timid_adjuster; Scenario.greedy_adjuster |] in
  let baselines = Robustness.baselines ~signal ~b_ss:[| 0.3; 0.7 |] ~net:net2 in
  let heterogeneous =
    List.map
      (fun (name, discipline, style) ->
        let r =
          Closed_loop.run ~net:net2 ~discipline ~style ~signal ~adjusters
            ~r0:[| 0.2; 0.2 |] ~interval ~updates ~seed ()
        in
        let tail = r.Closed_loop.mean_tail_rates in
        {
          design = name;
          timid = tail.(0);
          greedy = tail.(1);
          baseline_timid = baselines.(0);
          (* 10% stochastic slack on the baseline comparison. *)
          timid_meets_baseline = tail.(0) >= 0.9 *. baselines.(0);
        })
      [
        ("aggregate", Closed_loop.Fifo, Congestion.Aggregate);
        ("individual+fifo", Closed_loop.Fifo, Congestion.Individual);
        ("individual+fair-share", Closed_loop.Fs_priority, Congestion.Individual);
      ]
  in
  { homogeneous; heterogeneous }

let run () =
  let r = compute () in
  Exp_common.section "homogeneous population (N = 3): measured vs water-filling"
  ^ Exp_common.table
      ~header:[ "discipline"; "tail-mean rates"; "predicted"; "max rel err" ]
      ~rows:
        (List.map
           (fun row ->
             [
               row.discipline;
               Vec.to_string row.measured;
               Vec.to_string row.predicted;
               Exp_common.fnum row.max_rel_err;
             ])
           r.homogeneous)
  ^ "\n"
  ^ Exp_common.section "heterogeneous population (beta 0.3 vs 0.7)"
  ^ Exp_common.table
      ~header:[ "design"; "timid"; "greedy"; "timid baseline"; "timid served" ]
      ~rows:
        (List.map
           (fun row ->
             [
               row.design;
               Exp_common.fnum row.timid;
               Exp_common.fnum row.greedy;
               Exp_common.fnum row.baseline_timid;
               Exp_common.fbool row.timid_meets_baseline;
             ])
           r.heterogeneous)
  ^ "\nThe live system reproduces the model: individual feedback finds the\n\
     fair point from measured (noisy, delayed) signals, and only the Fair\n\
     Share gateway keeps the timid connection at its reservation share.\n"

let experiment =
  {
    Exp_common.id = "E17";
    title = "Closed-loop control over the packet simulator (extension)";
    paper_ref = "\xc2\xa72.5 idealizations removed";
    run;
  }
