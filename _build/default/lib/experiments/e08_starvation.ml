open Ffc_numerics
open Ffc_topology
open Ffc_core

type result = {
  trajectory : float array array;
  final : float array;
  predicted_greedy : float;
}

let compute ?(steps = 400) () =
  let net = Topologies.single ~mu:1. ~n:2 () in
  let c =
    Controller.create ~config:Feedback.aggregate_fifo
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
  in
  let trajectory = Controller.trajectory c ~net ~r0:[| 0.2; 0.2 |] ~steps in
  {
    trajectory;
    final = trajectory.(steps);
    predicted_greedy =
      Ffc_queueing.Mm1.g_inv (Signal.inverse Signal.linear_fractional 0.7);
  }

let run () =
  let r = compute () in
  let timid = Array.map (fun state -> state.(0)) r.trajectory in
  let greedy = Array.map (fun state -> state.(1)) r.trajectory in
  let canvas = Ascii_plot.canvas ~width:70 ~height:18 () in
  Ascii_plot.plot_series canvas ~glyph:'t' timid;
  Ascii_plot.plot_series canvas ~glyph:'g' greedy;
  Ascii_plot.render
    ~title:"aggregate feedback, heterogeneous betas: t = timid (0.3), g = greedy (0.7)"
    ~x_label:"step" ~y_label:"rate" canvas
  ^ Printf.sprintf
      "\n\
       Final allocation after %d steps: timid = %s, greedy = %s\n\
       Paper's prediction: timid -> 0; greedy -> rho with B(g(rho)) = 0.7,\n\
       i.e. %s.  \"Any connection sharing a bottleneck with a connection\n\
       having larger b_SS will eventually be completely shut down.\"\n"
      (Array.length r.trajectory - 1)
      (Exp_common.fnum r.final.(0))
      (Exp_common.fnum r.final.(1))
      (Exp_common.fnum r.predicted_greedy)

let experiment =
  {
    Exp_common.id = "E8";
    title = "Aggregate feedback starves less-greedy connections";
    paper_ref = "\xc2\xa73.4";
    run;
  }
