open Ffc_core
open Test_util

let test_additive_values () =
  let f = Rate_adjust.additive ~eta:0.1 ~beta:0.5 in
  check_float ~tol:1e-12 "below target increases" 0.02
    (Rate_adjust.eval f ~r:1. ~b:0.3 ~d:1.);
  check_float ~tol:1e-12 "above target decreases" (-0.02)
    (Rate_adjust.eval f ~r:1. ~b:0.7 ~d:1.);
  check_float "at target steady" 0. (Rate_adjust.eval f ~r:1. ~b:0.5 ~d:1.);
  check_float "delay irrelevant" (Rate_adjust.eval f ~r:1. ~b:0.3 ~d:1.)
    (Rate_adjust.eval f ~r:1. ~b:0.3 ~d:100.)

let test_proportional_values () =
  let f = Rate_adjust.proportional ~eta:0.1 ~beta:0.5 in
  check_float ~tol:1e-12 "scales with rate" 0.04
    (Rate_adjust.eval f ~r:2. ~b:0.3 ~d:1.);
  check_float "zero rate is frozen" 0. (Rate_adjust.eval f ~r:0. ~b:0.1 ~d:1.)

let test_fair_rate_limd_steady () =
  let eta = 0.2 and beta = 0.5 in
  let f = Rate_adjust.fair_rate_limd ~eta ~beta in
  (* Steady rate: (1-b) eta = beta b r  ->  r = eta (1-b)/(beta b). *)
  let b = 0.4 in
  let r_ss = eta *. (1. -. b) /. (beta *. b) in
  check_float ~tol:1e-12 "steady rate" 0. (Rate_adjust.eval f ~r:r_ss ~b ~d:1.);
  (* Steady rate depends on b only — same for all connections at a
     bottleneck: that's why this algorithm is guaranteed fair. *)
  check_true "steady rate rate-independent condition"
    (Rate_adjust.eval f ~r:(r_ss +. 1.) ~b ~d:1. < 0.)

let test_decbit_window_latency_bias () =
  let f = Rate_adjust.decbit_window ~eta:0.2 ~beta:0.5 in
  let short = Rate_adjust.eval f ~r:1. ~b:0.3 ~d:1. in
  let long = Rate_adjust.eval f ~r:1. ~b:0.3 ~d:10. in
  check_true "longer RTT gets weaker increase" (long < short);
  (* Infinite delay: increase term vanishes, decrease survives. *)
  check_float ~tol:1e-12 "infinite delay pure decrease" (-0.15)
    (Rate_adjust.eval f ~r:1. ~b:0.3 ~d:Float.infinity)

let test_aimd_values () =
  let f = Rate_adjust.aimd ~increase:0.01 ~decrease:0.125 in
  (* Bit clear: pure additive increase, rate independent. *)
  check_float ~tol:1e-12 "bit clear" 0.01 (Rate_adjust.eval f ~r:3. ~b:0. ~d:1.);
  (* Bit set: pure multiplicative decrease. *)
  check_float ~tol:1e-12 "bit set" (-0.375) (Rate_adjust.eval f ~r:3. ~b:1. ~d:1.);
  check_true "aimd validates decrease"
    (try
       ignore (Rate_adjust.aimd ~increase:0.01 ~decrease:1.5);
       false
     with Invalid_argument _ -> true)

let test_param_validation () =
  check_true "eta <= 0 rejected"
    (try
       ignore (Rate_adjust.additive ~eta:0. ~beta:0.5);
       false
     with Invalid_argument _ -> true);
  check_true "beta >= 1 rejected"
    (try
       ignore (Rate_adjust.additive ~eta:0.1 ~beta:1.);
       false
     with Invalid_argument _ -> true)

let test_nan_detected () =
  let f = Rate_adjust.make ~name:"nan" (fun ~r:_ ~b:_ ~d:_ -> Float.nan) in
  check_true "NaN raises"
    (try
       ignore (Rate_adjust.eval f ~r:1. ~b:0.5 ~d:1.);
       false
     with Failure _ -> true)

let test_infinite_detected () =
  (* Regression: the guard rejected NaN but let ±∞ through into the
     controller, where max(0, r + ∞) = ∞ poisons the queueing layer.
     Any non-finite adjustment must raise the same Failure, and the
     message must keep the (r, b, d) diagnostic shape. *)
  List.iter
    (fun v ->
      let f = Rate_adjust.make ~name:"inf" (fun ~r:_ ~b:_ ~d:_ -> v) in
      check_true
        (Printf.sprintf "%g raises with diagnostics" v)
        (try
           ignore (Rate_adjust.eval f ~r:1. ~b:0.5 ~d:2.);
           false
         with Failure msg ->
           let has needle =
             let nl = String.length needle and ml = String.length msg in
             let rec at i =
               i + nl <= ml && (String.sub msg i nl = needle || at (i + 1))
             in
             at 0
           in
           has "r=1" && has "b=0.5" && has "d=2"))
    [ Float.infinity; Float.neg_infinity ]

let test_declared_b_ss () =
  check_true "additive declares"
    (Rate_adjust.declared_b_ss (Rate_adjust.additive ~eta:0.1 ~beta:0.5) = Some 0.5);
  check_true "decbit does not"
    (Rate_adjust.declared_b_ss (Rate_adjust.decbit_window ~eta:0.1 ~beta:0.5) = None)

(* --- Theorem 1 classifier ------------------------------------------- *)

let test_classify_additive_tsi () =
  match Rate_adjust.classify_tsi (Rate_adjust.additive ~eta:0.1 ~beta:0.42) with
  | Rate_adjust.Tsi b -> check_float ~tol:1e-6 "b_ss recovered" 0.42 b
  | _ -> Alcotest.fail "additive must classify as TSI"

let test_classify_proportional_boundary () =
  match Rate_adjust.classify_tsi (Rate_adjust.proportional ~eta:0.1 ~beta:0.42) with
  | Rate_adjust.Boundary_tsi b -> check_float ~tol:1e-6 "b_ss recovered" 0.42 b
  | Rate_adjust.Tsi _ -> Alcotest.fail "proportional vanishes at r=0: boundary case"
  | Rate_adjust.Not_tsi -> Alcotest.fail "proportional is TSI away from r=0"

let test_classify_fair_rate_limd_not_tsi () =
  check_true "fair-rate LIMD is not TSI"
    (Rate_adjust.classify_tsi (Rate_adjust.fair_rate_limd ~eta:0.2 ~beta:0.5)
     = Rate_adjust.Not_tsi)

let test_classify_decbit_not_tsi () =
  check_true "DECbit window form is not TSI"
    (Rate_adjust.classify_tsi (Rate_adjust.decbit_window ~eta:0.2 ~beta:0.5)
     = Rate_adjust.Not_tsi)

let test_classify_custom_nonmonotone () =
  (* Two zeros in b: not TSI by Theorem 1. *)
  let f =
    Rate_adjust.make ~name:"two-zeros" (fun ~r:_ ~b ~d:_ -> (b -. 0.3) *. (b -. 0.7))
  in
  check_true "multiple zeros rejected"
    (Rate_adjust.classify_tsi f = Rate_adjust.Not_tsi)

let prop_classifier_recovers_beta =
  prop "classifier recovers beta for additive algorithms" ~count:25
    QCheck2.Gen.(pair (float_range 0.01 1.5) (float_range 0.05 0.95))
    (fun (eta, beta) ->
      match Rate_adjust.classify_tsi (Rate_adjust.additive ~eta ~beta) with
      | Rate_adjust.Tsi b -> Float.abs (b -. beta) < 1e-5
      | _ -> false)

let suites =
  [
    ( "core.rate_adjust",
      [
        case "additive values" test_additive_values;
        case "proportional values" test_proportional_values;
        case "fair-rate LIMD steady state" test_fair_rate_limd_steady;
        case "DECbit window latency bias" test_decbit_window_latency_bias;
        case "AIMD values" test_aimd_values;
        case "parameter validation" test_param_validation;
        case "NaN detection" test_nan_detected;
        case "infinity detection" test_infinite_detected;
        case "declared b_ss" test_declared_b_ss;
        case "Theorem 1: additive is TSI" test_classify_additive_tsi;
        case "Theorem 1: proportional boundary" test_classify_proportional_boundary;
        case "Theorem 1: fair-rate LIMD not TSI" test_classify_fair_rate_limd_not_tsi;
        case "Theorem 1: DECbit not TSI" test_classify_decbit_not_tsi;
        case "Theorem 1: multiple zeros" test_classify_custom_nonmonotone;
        prop_classifier_recovers_beta;
      ] );
  ]
