open Ffc_topology
open Ffc_core
open Test_util

let config = Feedback.individual_fifo

let single = Topologies.single ~mu:1. ~n:1 ()

let test_rates_of_windows_single () =
  (* One connection, FIFO, no latency: d = 1/(mu - r), so r = w(mu - r)
     gives r = w/(1 + w). *)
  let check_w w =
    let r = Window.rates_of_windows config ~net:single ~windows:[| w |] in
    check_float ~tol:1e-8 (Printf.sprintf "induced rate at w=%g" w) (w /. (1. +. w)) r.(0)
  in
  List.iter check_w [ 0.1; 1.; 3.; 100. ]

let test_zero_window_zero_rate () =
  let r = Window.rates_of_windows config ~net:single ~windows:[| 0. |] in
  check_float "zero window" 0. r.(0)

let test_self_limitation () =
  (* Even an absurd window cannot overload the gateway. *)
  let r = Window.rates_of_windows config ~net:single ~windows:[| 1e6 |] in
  check_true "rate below capacity" (r.(0) < 1.);
  check_true "rate close to capacity" (r.(0) > 0.99)

let test_littles_law_consistency () =
  (* At the fixed point, w = r * d(r) for every connection. *)
  let net = Topologies.parking_lot ~hops:2 ~latency:0.3 () in
  let windows = [| 0.8; 0.5; 1.2 |] in
  let rates = Window.rates_of_windows config ~net ~windows in
  let d = Feedback.delays config ~net ~rates in
  Array.iteri
    (fun i w ->
      check_float ~tol:1e-6 (Printf.sprintf "w = r*d for conn %d" i) w
        (rates.(i) *. d.(i)))
    windows

let test_fifo_rates_proportional_to_windows () =
  (* Shared FIFO gateway: d identical for everyone, so rates are
     proportional to windows. *)
  let net = Topologies.single ~mu:1. ~n:2 () in
  let rates = Window.rates_of_windows config ~net ~windows:[| 1.; 3. |] in
  check_float ~tol:1e-6 "rate ratio = window ratio" 3. (rates.(1) /. rates.(0))

let test_window_validation () =
  check_true "negative window rejected"
    (try
       ignore (Window.rates_of_windows config ~net:single ~windows:[| -1. |]);
       false
     with Invalid_argument _ -> true);
  check_true "length mismatch rejected"
    (try
       ignore (Window.rates_of_windows config ~net:single ~windows:[| 1.; 2. |]);
       false
     with Invalid_argument _ -> true)

let test_window_run_tsi_fair () =
  (* TSI window adjuster pins b = beta: induced rates are the fair point
     even with asymmetric latencies. *)
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "b"; mu = 1.; latency = 0. };
          { Network.gw_name = "a0"; mu = 10.; latency = 0.2 };
          { Network.gw_name = "a1"; mu = 10.; latency = 4. };
        |]
      ~connections:
        [|
          { Network.conn_name = "c0"; path = [ 1; 0 ] };
          { Network.conn_name = "c1"; path = [ 2; 0 ] };
        |]
  in
  match
    Window.run config ~net
      ~adjusters:(Array.make 2 (Window.additive_tsi ~eta:0.1 ~beta:0.5))
      ~w0:[| 0.2; 0.2 |]
  with
  | Window.Converged { rates; windows; _ } ->
    check_float ~tol:1e-5 "rates equal" rates.(0) rates.(1);
    check_true "windows unequal (longer path needs more)" (windows.(1) > 2. *. windows.(0))
  | Window.No_convergence _ | Window.Diverged _ ->
    Alcotest.fail "TSI window run should converge"

let test_window_run_decbit_biased () =
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "b"; mu = 1.; latency = 0. };
          { Network.gw_name = "a0"; mu = 10.; latency = 0.2 };
          { Network.gw_name = "a1"; mu = 10.; latency = 4. };
        |]
      ~connections:
        [|
          { Network.conn_name = "c0"; path = [ 1; 0 ] };
          { Network.conn_name = "c1"; path = [ 2; 0 ] };
        |]
  in
  match
    Window.run Feedback.aggregate_fifo ~net
      ~adjusters:(Array.make 2 (Window.decbit ~eta:0.05 ~beta:0.5))
      ~w0:[| 0.2; 0.2 |]
  with
  | Window.Converged { rates; windows; _ } ->
    check_float ~tol:1e-5 "windows equalize under aggregate" windows.(0) windows.(1);
    check_true "short path wins" (rates.(0) > 2. *. rates.(1))
  | Window.No_convergence _ | Window.Diverged _ ->
    Alcotest.fail "DECbit window run should converge"

let test_non_finite_adjuster_is_divergence () =
  (* Regression: an adjuster emitting +infinity used to sail through
     max(0, w + dw) and crash one step later inside rates_of_windows
     with "windows must be finite"; a NaN one raised a bare Failure.
     Both now classify as Diverged at the offending step. *)
  let run_with value =
    let bomb =
      Window.make_adjuster ~name:"bomb" (fun ~w:_ ~b:_ ~d:_ -> value)
    in
    Window.run config ~net:single ~adjusters:[| bomb |] ~w0:[| 0.5 |]
  in
  (match run_with Float.infinity with
  | Window.Diverged { windows; at_step } ->
    check_true "diverged on first step" (at_step = 1);
    check_true "offending window is +inf" (windows.(0) = Float.infinity)
  | _ -> Alcotest.fail "+inf adjuster should report Diverged");
  (match run_with Float.nan with
  | Window.Diverged { windows; at_step } ->
    check_true "NaN diverges on first step" (at_step = 1);
    check_true "offending window is NaN" (Float.is_nan windows.(0))
  | _ -> Alcotest.fail "NaN adjuster should report Diverged");
  (match run_with Float.neg_infinity with
  | Window.Diverged _ -> Alcotest.fail "-inf clamps to 0, should converge there"
  | Window.Converged { windows; _ } -> check_float "clamped at zero" 0. windows.(0)
  | Window.No_convergence _ -> Alcotest.fail "-inf adjuster should settle at w = 0")

let test_adjuster_validation () =
  check_true "beta validated"
    (try
       ignore (Window.additive_tsi ~eta:0.1 ~beta:1.5);
       false
     with Invalid_argument _ -> true)

let prop_littles_law =
  prop "w = r*d at every solved fixed point" ~count:40
    QCheck2.Gen.(array_size (pure 3) (float_range 0. 5.))
    (fun windows ->
      let net = Topologies.single ~mu:1. ~n:3 () in
      let rates = Window.rates_of_windows config ~net ~windows in
      let d = Feedback.delays config ~net ~rates in
      let ok = ref true in
      Array.iteri
        (fun i w ->
          let lhs = rates.(i) *. d.(i) in
          if Float.abs (lhs -. w) > 1e-5 *. (1. +. w) then ok := false)
        windows;
      !ok)

let suites =
  [
    ( "core.window",
      [
        case "induced rate closed form" test_rates_of_windows_single;
        case "zero window" test_zero_window_zero_rate;
        case "self-limitation" test_self_limitation;
        case "Little's law at fixed point" test_littles_law_consistency;
        case "FIFO rates proportional to windows" test_fifo_rates_proportional_to_windows;
        case "input validation" test_window_validation;
        case "TSI window run is fair" test_window_run_tsi_fair;
        case "DECbit window run is biased" test_window_run_decbit_biased;
        case "non-finite adjuster diverges" test_non_finite_adjuster_is_divergence;
        case "adjuster validation" test_adjuster_validation;
        prop_littles_law;
      ] );
  ]
