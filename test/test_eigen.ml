open Ffc_numerics
open Test_util

let sorted_reals ev =
  let rs = Array.map (fun z -> z.Complex.re) ev in
  Array.sort Float.compare rs;
  rs

let all_real ?(tol = 1e-8) ev = Array.for_all (fun z -> Float.abs z.Complex.im <= tol) ev

let test_diagonal () =
  let m = Mat.of_arrays [| [| 3.; 0.; 0. |]; [| 0.; -1.; 0. |]; [| 0.; 0.; 2. |] |] in
  let ev = Eigen.eigenvalues m in
  check_true "all real" (all_real ev);
  check_vec ~tol:1e-10 "diagonal eigenvalues" [| -1.; 2.; 3. |] (sorted_reals ev)

let test_triangular () =
  let m = Mat.of_arrays [| [| 1.; 5.; 7. |]; [| 0.; 4.; 2. |]; [| 0.; 0.; -3. |] |] in
  let ev = Eigen.eigenvalues m in
  check_vec ~tol:1e-9 "triangular eigenvalues" [| -3.; 1.; 4. |] (sorted_reals ev)

let test_symmetric_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3. *)
  let m = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  check_vec ~tol:1e-10 "symmetric 2x2" [| 1.; 3. |] (sorted_reals (Eigen.eigenvalues m))

let test_rotation_complex_pair () =
  (* Rotation by 90 degrees: eigenvalues +-i. *)
  let m = Mat.of_arrays [| [| 0.; -1. |]; [| 1.; 0. |] |] in
  let ev = Eigen.eigenvalues_sorted m in
  Alcotest.(check int) "two eigenvalues" 2 (Array.length ev);
  check_float ~tol:1e-10 "modulus 1 (first)" 1. (Complex.norm ev.(0));
  check_float ~tol:1e-10 "modulus 1 (second)" 1. (Complex.norm ev.(1));
  check_float ~tol:1e-10 "re = 0" 0. ev.(0).Complex.re;
  check_float ~tol:1e-10 "conjugate pair" 0. (ev.(0).Complex.im +. ev.(1).Complex.im);
  check_float ~tol:1e-10 "im = 1" 1. (Float.abs ev.(0).Complex.im)

let test_rank_one_shift () =
  (* I - eta * ones: eigenvalues 1 - eta*n (once) and 1 (n-1 times) — the
     paper's aggregate-feedback stability matrix (Section 3.3). *)
  let n = 6 and eta = 0.3 in
  let m = Mat.init n n (fun i j -> (if i = j then 1. else 0.) -. eta) in
  let ev = Eigen.eigenvalues_sorted m in
  check_true "all real" (all_real ev);
  let rs = sorted_reals ev in
  check_float ~tol:1e-9 "smallest is 1 - eta*n" (1. -. (eta *. float_of_int n)) rs.(0);
  for i = 1 to n - 1 do
    check_float ~tol:1e-9 (Printf.sprintf "unit eigenvalue %d" i) 1. rs.(i)
  done

let test_trace_equals_sum () =
  let m =
    Mat.of_arrays
      [| [| 4.; 1.; 2. |]; [| 0.5; 3.; -1. |]; [| 2.; 0.; 1.5 |] |]
  in
  let ev = Eigen.eigenvalues m in
  let sum_re = Array.fold_left (fun acc z -> acc +. z.Complex.re) 0. ev in
  let sum_im = Array.fold_left (fun acc z -> acc +. z.Complex.im) 0. ev in
  check_float ~tol:1e-8 "sum of eigenvalues = trace" (Mat.trace m) sum_re;
  check_float ~tol:1e-8 "imaginary parts cancel" 0. sum_im

let test_det_equals_product () =
  let m =
    Mat.of_arrays [| [| 2.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 4. |] |]
  in
  let ev = Eigen.eigenvalues m in
  let prod =
    Array.fold_left (fun acc z -> Complex.mul acc z) Complex.one ev
  in
  check_float_rel ~tol:1e-8 "product of eigenvalues = det" (Mat.det m) prod.Complex.re

let test_spectral_radius () =
  let m = Mat.of_arrays [| [| 0.5; 0.2 |]; [| 0.1; 0.4 |] |] in
  check_true "contraction radius < 1" (Eigen.spectral_radius m < 1.);
  let m2 = Mat.of_arrays [| [| 1.5; 0. |]; [| 0.; 0.2 |] |] in
  check_float ~tol:1e-10 "radius of diag" 1.5 (Eigen.spectral_radius m2)

let test_is_linearly_stable () =
  let stable = Mat.of_arrays [| [| 0.9; 0. |]; [| 0.; -0.5 |] |] in
  let unstable = Mat.of_arrays [| [| 1.1; 0. |]; [| 0.; 0.5 |] |] in
  check_true "stable matrix" (Eigen.is_linearly_stable stable);
  check_false "unstable matrix" (Eigen.is_linearly_stable unstable);
  (* Unit eigenvalue along a steady-state manifold is discounted. *)
  let manifold = Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 0.5 |] |] in
  check_false "unit eigenvalue fails strict test" (Eigen.is_linearly_stable manifold);
  check_true "unit eigenvalue ignored on manifold"
    (Eigen.is_linearly_stable ~ignore_unit:1 manifold)

let test_hessenberg_structure () =
  let m = Mat.init 5 5 (fun i j -> float_of_int (((i + 2) * (j + 1)) mod 7) +. 1.) in
  let h = Eigen.hessenberg m in
  let ok = ref true in
  for i = 0 to 4 do
    for j = 0 to i - 2 do
      if Float.abs (Mat.get h i j) > 1e-12 then ok := false
    done
  done;
  check_true "below-subdiagonal zero" !ok;
  (* Similarity preserves eigenvalues (compare sorted moduli). *)
  let norms m =
    let ns = Array.map Complex.norm (Eigen.eigenvalues m) in
    Array.sort Float.compare ns;
    ns
  in
  check_vec ~tol:1e-6 "hessenberg preserves spectrum" (norms m) (norms h)

let test_power_iteration () =
  let m = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 0.5 |] |] in
  match Eigen.power_iteration m with
  | None -> Alcotest.fail "power iteration should converge"
  | Some (lambda, v) ->
    check_float ~tol:1e-8 "dominant eigenvalue" 2. lambda;
    check_float ~tol:1e-6 "eigenvector second comp ~ 0" 0. (Float.abs v.(1))

let test_1x1_and_empty () =
  let one = Mat.of_arrays [| [| 42. |] |] in
  let ev = Eigen.eigenvalues one in
  check_float "1x1 eigenvalue" 42. ev.(0).Complex.re;
  Alcotest.(check int) "0x0 no eigenvalues" 0 (Array.length (Eigen.eigenvalues (Mat.create 0 0)))

let test_triangular_eigenvalues () =
  let lower = Mat.of_arrays [| [| 1.; 0. |]; [| 5.; 2. |] |] in
  (match Eigen.triangular_eigenvalues lower with
  | None -> Alcotest.fail "lower triangular"
  | Some d -> check_vec "diagonal returned" [| 1.; 2. |] d);
  let full = Mat.of_arrays [| [| 1.; 3. |]; [| 5.; 2. |] |] in
  check_true "non-triangular rejected" (Eigen.triangular_eigenvalues full = None)

let test_triangular_order_detection () =
  let lower =
    Mat.of_arrays [| [| 1.; 0.; 0. |]; [| 5.; 2.; 0. |]; [| 1.; 7.; 3. |] |]
  in
  (match Eigen.triangular_order lower with
  | None -> Alcotest.fail "lower triangular not detected"
  | Some order ->
    check_true "order triangularizes"
      (Mat.is_lower_triangular (Mat.permute_rows_cols lower order)));
  let upper = Mat.of_arrays [| [| 1.; 4. |]; [| 0.; 2. |] |] in
  (match Eigen.triangular_order upper with
  | None -> Alcotest.fail "upper triangular not detected"
  | Some order ->
    check_true "reversal triangularizes"
      (Mat.is_lower_triangular (Mat.permute_rows_cols upper order)));
  let dense = Mat.of_arrays [| [| 1.; 4. |]; [| 5.; 2. |] |] in
  check_true "dense rejected" (Eigen.triangular_order dense = None);
  (* Default detection is exact-zero; a tolerance widens it. *)
  let noisy = Mat.of_arrays [| [| 1.; 1e-12 |]; [| 5.; 2. |] |] in
  check_true "sub-tolerance entry blocks exact detection"
    (Eigen.triangular_order noisy = None);
  check_true "tolerance admits it" (Eigen.triangular_order ~tol:1e-9 noisy <> None)

let test_permuted_triangular_fast_path () =
  (* A lower triangular L conjugated by a permutation: the structural
     path must find the order, read the diagonal, and agree with the
     dense QR iteration on the same matrix to 1e-9. *)
  let n = 12 in
  let l =
    Mat.init n n (fun i j ->
        if j > i then 0.
        else if i = j then 2. +. float_of_int i
        else sin (float_of_int ((3 * i) + j)))
  in
  let p = [| 7; 2; 9; 0; 11; 4; 1; 10; 3; 6; 8; 5 |] in
  let pinv = Array.make n 0 in
  Array.iteri (fun i pi -> pinv.(pi) <- i) p;
  let m = Mat.init n n (fun i j -> Mat.get l pinv.(i) pinv.(j)) in
  (match Eigen.structural_eigenvalues m with
  | None -> Alcotest.fail "permuted triangular structure not detected"
  | Some d ->
    let got = Array.copy d and expected = Mat.diagonal l in
    Array.sort Float.compare got;
    Array.sort Float.compare expected;
    check_vec ~tol:0. "diagonal preserved as a set" expected got);
  check_float ~tol:1e-9 "fast radius = dense radius" (Eigen.spectral_radius_dense m)
    (Eigen.spectral_radius m);
  let fast = sorted_reals (Eigen.eigenvalues m) in
  let dense = sorted_reals (Eigen.eigenvalues_dense m) in
  check_vec ~tol:1e-9 "fast eigenvalues = dense QR" dense fast

let test_defective_matrix () =
  (* Jordan block [[1,1],[0,1]]: eigenvalue 1 with multiplicity 2 and a
     single eigenvector — the QR iteration must still report both. *)
  let m = Mat.of_arrays [| [| 1.; 1. |]; [| 0.; 1. |] |] in
  check_vec ~tol:1e-6 "double eigenvalue 1" [| 1.; 1. |] (sorted_reals (Eigen.eigenvalues m))

let test_nilpotent_matrix () =
  let m = Mat.of_arrays [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 0.; 0.; 0. |] |] in
  let ev = Eigen.eigenvalues m in
  Array.iter (fun z -> check_float ~tol:1e-6 "all zero" 0. (Complex.norm z)) ev

let test_large_symmetric_spectrum () =
  (* Tridiagonal -1,2,-1 of size n has eigenvalues 2 - 2cos(k pi/(n+1)). *)
  let n = 16 in
  let m =
    Mat.init n n (fun i j ->
        if i = j then 2. else if abs (i - j) = 1 then -1. else 0.)
  in
  let got = sorted_reals (Eigen.eigenvalues m) in
  let expected =
    Array.init n (fun k ->
        2. -. (2. *. cos (float_of_int (k + 1) *. Float.pi /. float_of_int (n + 1))))
  in
  Array.sort Float.compare expected;
  check_vec ~tol:1e-8 "tridiagonal spectrum" expected got

let gen_mat n =
  QCheck2.Gen.(
    array_size (pure (n * n)) (float_range (-5.) 5.)
    |> map (fun data -> Mat.init n n (fun i j -> data.((i * n) + j))))

let prop_trace_sum =
  prop "eigenvalue sum = trace" ~count:60 (gen_mat 5) (fun m ->
      let ev = Eigen.eigenvalues m in
      let s = Array.fold_left (fun acc z -> acc +. z.Complex.re) 0. ev in
      Float.abs (s -. Mat.trace m) <= 1e-6 *. (1. +. Float.abs (Mat.trace m)))

let prop_conjugate_pairs =
  prop "complex eigenvalues come in conjugate pairs" ~count:60 (gen_mat 4) (fun m ->
      let ev = Eigen.eigenvalues m in
      let im_sum = Array.fold_left (fun acc z -> acc +. z.Complex.im) 0. ev in
      Float.abs im_sum <= 1e-7)

let suites =
  [
    ( "numerics.eigen",
      [
        case "diagonal matrix" test_diagonal;
        case "triangular matrix" test_triangular;
        case "symmetric 2x2" test_symmetric_2x2;
        case "rotation complex pair" test_rotation_complex_pair;
        case "rank-one shift (paper DF)" test_rank_one_shift;
        case "trace = eigenvalue sum" test_trace_equals_sum;
        case "det = eigenvalue product" test_det_equals_product;
        case "spectral radius" test_spectral_radius;
        case "linear stability predicate" test_is_linearly_stable;
        case "hessenberg structure" test_hessenberg_structure;
        case "power iteration" test_power_iteration;
        case "1x1 and empty" test_1x1_and_empty;
        case "triangular eigenvalues" test_triangular_eigenvalues;
        case "triangular-order detection" test_triangular_order_detection;
        case "permuted-triangular fast path" test_permuted_triangular_fast_path;
        case "defective (Jordan) matrix" test_defective_matrix;
        case "nilpotent matrix" test_nilpotent_matrix;
        case "tridiagonal spectrum (n=16)" test_large_symmetric_spectrum;
        prop_trace_sum;
        prop_conjugate_pairs;
      ] );
  ]
