open Ffc_numerics
open Test_util

(* The pool must agree with Array.map / Array.init in input order, at
   every jobs setting, including jobs > length and empty inputs. *)
let test_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) input in
  List.iter
    (fun jobs ->
      let got = Pool.parallel_map ~jobs (fun i -> i * i) input in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected got)
    [ 1; 2; 3; 7; 200 ]

let test_init_matches_sequential () =
  let expected = Array.init 37 (fun i -> 3 * i) in
  Alcotest.(check (array int))
    "parallel_init" expected
    (Pool.parallel_init ~jobs:4 37 (fun i -> 3 * i))

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map ~jobs:4 (fun i -> i) [||]);
  Alcotest.(check (array int))
    "singleton" [| 9 |]
    (Pool.parallel_map ~jobs:4 (fun i -> i * i) [| 3 |]);
  Alcotest.(check (array int)) "init 0" [||] (Pool.parallel_init ~jobs:4 0 Fun.id)

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.parallel_map ~jobs:3
           (fun i -> if i = 17 then failwith "task boom" else i)
           (Array.init 64 Fun.id));
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "Failure propagated" (Some "task boom") raised;
  (* Sequential path propagates identically. *)
  Alcotest.check_raises "jobs=1 propagates" (Failure "task boom") (fun () ->
      ignore
        (Pool.parallel_map ~jobs:1
           (fun i -> if i = 2 then failwith "task boom" else i)
           (Array.init 4 Fun.id)))

let test_nested_rejected () =
  (* Spawning a pool from inside a pool task must raise Nested... *)
  let verdicts =
    Pool.parallel_map ~jobs:2
      (fun _ ->
        check_true "task runs on a worker" (Pool.in_worker ());
        match Pool.parallel_map ~jobs:2 Fun.id [| 1; 2; 3 |] with
        | _ -> false
        | exception Pool.Nested -> true)
      (Array.init 8 Fun.id)
  in
  Array.iteri
    (fun i ok -> check_true (Printf.sprintf "task %d saw Nested" i) ok)
    verdicts;
  check_true "flag cleared after the pool drains" (not (Pool.in_worker ()))

let test_nested_sequential_allowed () =
  (* ... but sequential execution (effective_jobs collapses to 1 inside
     a worker) composes fine — this is how run_all over experiments that
     themselves sweep in parallel stays safe. *)
  let sums =
    Pool.parallel_map ~jobs:2
      (fun i ->
        let inner =
          Pool.parallel_map
            ~jobs:(Pool.effective_jobs ())
            (fun j -> (10 * i) + j)
            [| 1; 2; 3 |]
        in
        Alcotest.(check int) "inner collapses to 1 job" 1 (Pool.effective_jobs ());
        Array.fold_left ( + ) 0 inner)
      (Array.init 6 Fun.id)
  in
  Array.iteri
    (fun i s -> Alcotest.(check int) (Printf.sprintf "sum %d" i) ((30 * i) + 6) s)
    sums

let test_default_jobs () =
  let saved = Pool.default_jobs () in
  check_true "default >= 1" (saved >= 1);
  Pool.set_default_jobs 3;
  Alcotest.(check int) "override visible" 3 (Pool.default_jobs ());
  Alcotest.(check int) "effective = default" 3 (Pool.effective_jobs ());
  Alcotest.(check int) "explicit wins" 5 (Pool.effective_jobs ~jobs:5 ());
  Pool.set_default_jobs saved;
  Alcotest.check_raises "jobs 0 rejected"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1") (fun () ->
      Pool.set_default_jobs 0)

let suites =
  [
    ( "pool",
      [
        case "parallel_map matches Array.map" test_map_matches_sequential;
        case "parallel_init matches Array.init" test_init_matches_sequential;
        case "empty and singleton inputs" test_empty_and_singleton;
        case "exception propagation" test_exception_propagates;
        case "nested use rejected" test_nested_rejected;
        case "nested sequential allowed" test_nested_sequential_allowed;
        case "default jobs control" test_default_jobs;
      ] );
  ]
