open Ffc_numerics
open Ffc_queueing
open Test_util

(* ------------------------------------------------------------------ *)
(* M/M/1                                                               *)
(* ------------------------------------------------------------------ *)

let test_g () =
  check_float "g(0)" 0. (Mm1.g 0.);
  check_float "g(1/2)" 1. (Mm1.g 0.5);
  check_float ~tol:1e-12 "g(3/4)" 3. (Mm1.g 0.75);
  check_true "g saturates" (Mm1.g 1. = Float.infinity);
  check_true "g beyond saturation" (Mm1.g 2. = Float.infinity)

let test_g_inv () =
  check_float "g_inv(0)" 0. (Mm1.g_inv 0.);
  check_float "g_inv(1)" 0.5 (Mm1.g_inv 1.);
  check_float "g_inv(inf)" 1. (Mm1.g_inv Float.infinity);
  (* Round trip. *)
  check_float ~tol:1e-12 "g_inv (g x) = x" 0.3 (Mm1.g_inv (Mm1.g 0.3))

let test_g_negative () =
  Alcotest.check_raises "negative load" (Invalid_argument "Mm1.g: negative load")
    (fun () -> ignore (Mm1.g (-0.1)))

let test_mm1_derived () =
  check_float ~tol:1e-12 "number in system" 1. (Mm1.number_in_system ~mu:2. ~rate:1.);
  check_float ~tol:1e-12 "sojourn" 1. (Mm1.sojourn_time ~mu:2. ~rate:1.);
  check_float ~tol:1e-12 "waiting" 0.5 (Mm1.queueing_delay ~mu:2. ~rate:1.);
  check_true "saturated sojourn" (Mm1.sojourn_time ~mu:1. ~rate:1. = Float.infinity);
  check_float "utilization" 0.5 (Mm1.utilization ~mu:2. ~rate:1.)

(* ------------------------------------------------------------------ *)
(* FIFO                                                                *)
(* ------------------------------------------------------------------ *)

let test_fifo_basic () =
  (* mu=4, rates 1 and 2: rho_tot = 3/4, Q_i = rho_i / (1 - 3/4). *)
  let q = Fifo.queue_lengths ~mu:4. [| 1.; 2. |] in
  check_vec ~tol:1e-12 "fifo queues" [| 1.; 2. |] q

let test_fifo_single_matches_mm1 () =
  let q = Fifo.queue_lengths ~mu:2. [| 1. |] in
  check_float ~tol:1e-12 "single conn = M/M/1" (Mm1.number_in_system ~mu:2. ~rate:1.) q.(0)

let test_fifo_overload () =
  let q = Fifo.queue_lengths ~mu:1. [| 0.7; 0.5; 0. |] in
  check_true "positive-rate queues blow up"
    (q.(0) = Float.infinity && q.(1) = Float.infinity);
  check_float "zero-rate queue stays 0" 0. q.(2)

let test_fifo_total () =
  check_float ~tol:1e-12 "total queue" (Mm1.g 0.75) (Fifo.total_queue ~mu:4. [| 1.; 2. |])

let test_fifo_sojourn_uniform () =
  check_float ~tol:1e-12 "sojourn 1/(mu - sum)" 1. (Fifo.sojourn_time ~mu:4. [| 1.; 2. |])

let test_fifo_validation () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Fifo: rates must be finite and non-negative") (fun () ->
      ignore (Fifo.queue_lengths ~mu:1. [| -1. |]));
  Alcotest.check_raises "bad mu" (Invalid_argument "Fifo: mu must be positive")
    (fun () -> ignore (Fifo.queue_lengths ~mu:0. [| 1. |]))

(* ------------------------------------------------------------------ *)
(* Preemptive priority                                                 *)
(* ------------------------------------------------------------------ *)

let test_priority_cumulative () =
  let cum = Priority.cumulative_in_system ~mu:4. [| 1.; 1. |] in
  check_vec ~tol:1e-12 "cumulative occupancy" [| Mm1.g 0.25; Mm1.g 0.5 |] cum

let test_priority_per_class () =
  let per = Priority.per_class_in_system ~mu:4. [| 1.; 1. |] in
  check_float ~tol:1e-12 "high class unaffected by low" (Mm1.g 0.25) per.(0);
  check_float ~tol:1e-12 "low class gets the rest" (Mm1.g 0.5 -. Mm1.g 0.25) per.(1)

let test_priority_high_class_isolated () =
  (* The high class sees an M/M/1 regardless of low-class overload. *)
  let per = Priority.per_class_in_system ~mu:2. [| 1.; 10. |] in
  check_float ~tol:1e-12 "high class" (Mm1.g 0.5) per.(0);
  check_true "low class saturates" (per.(1) = Float.infinity)

let test_priority_saturated_zero_class () =
  let per = Priority.per_class_in_system ~mu:1. [| 2.; 0. |] in
  check_true "overloaded class infinite" (per.(0) = Float.infinity);
  check_float "zero-rate class empty" 0. per.(1)

let test_priority_total () =
  check_float ~tol:1e-12 "total matches g" (Mm1.g 0.5)
    (Priority.total_in_system ~mu:4. [| 1.; 1. |])

(* ------------------------------------------------------------------ *)
(* Fair Share                                                          *)
(* ------------------------------------------------------------------ *)

let test_fs_table1_decomposition () =
  (* Paper Table 1 with four connections, increasing rates. *)
  let rates = [| 1.; 2.; 4.; 7. |] in
  let d = Fair_share.decomposition rates in
  let expected =
    [|
      [| 1.; 0.; 0.; 0. |];
      [| 1.; 1.; 0.; 0. |];
      [| 1.; 1.; 2.; 0. |];
      [| 1.; 1.; 2.; 3. |];
    |]
  in
  Array.iteri (fun i row -> check_vec (Printf.sprintf "row %d" i) expected.(i) row) d;
  (* Row sums recover the rates. *)
  Array.iteri
    (fun i row -> check_float (Printf.sprintf "row sum %d" i) rates.(i) (Vec.sum row))
    d

let test_fs_decomposition_unsorted_input () =
  let d = Fair_share.decomposition [| 7.; 1. |] in
  check_vec "fast connection row" [| 1.; 6. |] d.(0);
  check_vec "slow connection row" [| 1.; 0. |] d.(1)

let test_fs_level_rates () =
  check_vec "level increments" [| 1.; 1.; 2.; 3. |] (Fair_share.level_rates [| 1.; 2.; 4.; 7. |]);
  check_vec "tied rates give zero increments" [| 2.; 0. |] (Fair_share.level_rates [| 2.; 2. |])

let test_fs_fair_cumulative_load () =
  let rates = [| 1.; 2.; 4. |] in
  check_float "T for smallest" 3. (Fair_share.fair_cumulative_load rates 0);
  check_float "T for middle" 5. (Fair_share.fair_cumulative_load rates 1);
  check_float "T for largest" 7. (Fair_share.fair_cumulative_load rates 2)

let test_fs_recursion_two_conn () =
  (* mu=4, rates (1,2): T_1 = 2, T_2 = 3.  Q_1 = g(1/2)/2 = 0.5,
     Q_2 = g(3/4) - Q_1 = 3 - 0.5 = 2.5. *)
  let q = Fair_share.queue_lengths ~mu:4. [| 1.; 2. |] in
  check_vec ~tol:1e-12 "fs queues" [| 0.5; 2.5 |] q

let test_fs_unsorted_input_order_preserved () =
  let q = Fair_share.queue_lengths ~mu:4. [| 2.; 1. |] in
  check_vec ~tol:1e-12 "order preserved" [| 2.5; 0.5 |] q

let test_fs_equal_rates_symmetric () =
  let q = Fair_share.queue_lengths ~mu:3. [| 1.; 1. |] in
  check_float ~tol:1e-12 "tied rates equal queues" q.(0) q.(1);
  check_float ~tol:1e-12 "conserves total" (Mm1.g (2. /. 3.)) (q.(0) +. q.(1))

let test_fs_single_matches_mm1 () =
  let q = Fair_share.queue_lengths ~mu:2. [| 1. |] in
  check_float ~tol:1e-12 "single conn = M/M/1" (Mm1.g 0.5) q.(0)

let test_fs_conservation () =
  let rates = [| 0.3; 0.9; 0.1; 0.5 |] in
  let q = Fair_share.queue_lengths ~mu:2. rates in
  check_float ~tol:1e-9 "sum Q = g(rho)" (Mm1.g (Vec.sum rates /. 2.)) (Vec.sum q)

let test_fs_isolation_under_overload () =
  (* Total load is 3x capacity, but the slow connection's fair load
     T = 0.1*3 = 0.3 < mu = 1: its queue must stay finite.  This is the
     robustness mechanism of Theorem 5. *)
  let q = Fair_share.queue_lengths ~mu:1. [| 0.1; 1.4; 1.5 |] in
  check_true "slow connection isolated" (Float.is_finite q.(0));
  check_true "overloading connections saturate"
    (q.(1) = Float.infinity && q.(2) = Float.infinity);
  (* The slow connection sees exactly an M/M/1 at its fair load. *)
  check_float ~tol:1e-12 "slow queue = g(0.3)/3 limit" (Mm1.g 0.3 /. 3.) q.(0)

let test_fs_zero_rate () =
  let q = Fair_share.queue_lengths ~mu:1. [| 0.; 0.5 |] in
  check_float "zero rate empty queue" 0. q.(0);
  check_true "other queue finite positive" (q.(1) > 0. && Float.is_finite q.(1))

let test_fs_sojourn_zero_rate_regression () =
  (* The single-probe fast path for zero-rate limiting sojourns must
     reproduce the per-connection probe it replaced: re-run the O(N^2)
     reference here and compare. *)
  let reference ~mu rates =
    let q = Fair_share.queue_lengths ~mu rates in
    Array.mapi
      (fun i r ->
        if r > 0. then q.(i) /. r
        else begin
          let probe = 1e-9 *. mu in
          let rates' = Array.copy rates in
          rates'.(i) <- probe;
          let q' = Fair_share.queue_lengths ~mu rates' in
          q'.(i) /. probe
        end)
      rates
  in
  List.iter
    (fun (mu, rates) ->
      check_vec ~tol:1e-12
        (Printf.sprintf "mu=%g n=%d" mu (Array.length rates))
        (reference ~mu rates)
        (Fair_share.sojourn_times ~mu rates))
    [
      (1., [| 0.; 0.5 |]);
      (2., [| 0.; 0.3; 0.; 0.9; 0. |]);
      (1., [| 0.; 0.; 0.; 0. |]);
      (3., [| 0.4; 0.2; 1.1 |]);
      (5., [| 0.; 1.; 2.; 0.; 0.5; 0.5; 0.; 0.1 |]);
    ];
  (* All zero-rate connections share one limiting sojourn. *)
  let w = Fair_share.sojourn_times ~mu:2. [| 0.; 0.7; 0. |] in
  check_float ~tol:1e-12 "zero-rate sojourns equal" w.(0) w.(2);
  check_true "limiting sojourn positive" (w.(0) > 0. && Float.is_finite w.(0))

let test_fs_vs_fifo_redistribution () =
  (* FS protects the slow connection: its queue under FS is no larger than
     under FIFO; the fast connection pays. *)
  let rates = [| 0.2; 1.3 |] and mu = 2. in
  let qfs = Fair_share.queue_lengths ~mu rates in
  let qfifo = Fifo.queue_lengths ~mu rates in
  check_true "slow favored by FS" (qfs.(0) < qfifo.(0));
  check_true "fast penalized by FS" (qfs.(1) > qfifo.(1))

let test_fs_theorem5_bound () =
  (* Q_i(r) <= r_i / (mu - N r_i) — the Theorem 5 robustness criterion,
     spot-checked on a concrete configuration. *)
  let rates = [| 0.2; 0.5; 0.9 |] and mu = 3. in
  let n = float_of_int (Array.length rates) in
  let q = Fair_share.queue_lengths ~mu rates in
  Array.iteri
    (fun i qi ->
      let bound = rates.(i) /. (mu -. (n *. rates.(i))) in
      check_true (Printf.sprintf "bound holds for %d" i) (qi <= bound +. 1e-9))
    q

let test_fifo_violates_theorem5_bound () =
  (* A slow connection squeezed by a fast one violates the criterion under
     FIFO. *)
  let rates = [| 0.05; 2.5 |] and mu = 3. in
  let q = Fifo.queue_lengths ~mu rates in
  let bound = rates.(0) /. (mu -. (2. *. rates.(0))) in
  check_true "fifo breaks the bound" (q.(0) > bound)

(* ------------------------------------------------------------------ *)
(* Service abstraction + feasibility checks                            *)
(* ------------------------------------------------------------------ *)

let test_processor_sharing_equals_fifo () =
  (* M/M/1-PS mean occupancies coincide with FIFO's — the model cannot
     distinguish the two disciplines. *)
  let rates = [| 0.2; 0.7; 0.4 |] and mu = 2. in
  check_vec ~tol:1e-12 "PS = FIFO queue lengths"
    (Service.queue_lengths Service.fifo ~mu rates)
    (Service.queue_lengths Service.processor_sharing ~mu rates);
  Alcotest.(check string) "its own name" "processor-sharing"
    (Service.name Service.processor_sharing)

let test_service_dispatch () =
  Alcotest.(check string) "fifo name" "fifo" (Service.name Service.fifo);
  Alcotest.(check string) "fs name" "fair-share" (Service.name Service.fair_share);
  let q = Service.queue_lengths Service.fifo ~mu:4. [| 1.; 2. |] in
  check_vec ~tol:1e-12 "dispatch matches direct call" (Fifo.queue_lengths ~mu:4. [| 1.; 2. |]) q

let test_service_sojourn_zero_rate () =
  let w = Service.sojourn_times Service.fifo ~mu:2. [| 0.; 1. |] in
  (* FIFO sojourn is rate independent: 1/(mu - sum). *)
  check_float ~tol:1e-6 "zero-rate probe limit" 1. w.(0);
  check_float ~tol:1e-9 "positive rate" 1. w.(1)

let feasibility_all svc rates mu =
  List.iter
    (fun (name, ok) -> check_true (Service.name svc ^ " " ^ name) ok)
    (Feasibility.all_ok svc ~mu rates)

let test_feasibility_fifo () = feasibility_all Service.fifo [| 0.3; 0.9; 0.1; 0.5 |] 2.
let test_feasibility_fs () = feasibility_all Service.fair_share [| 0.3; 0.9; 0.1; 0.5 |] 2.

let test_feasibility_rejects_bogus () =
  (* A "discipline" that dumps all queueing on the first connection is not
     symmetric. *)
  let bogus =
    Service.make ~name:"bogus" (fun ~mu rates ->
        let total = Mm1.g (Vec.sum rates /. mu) in
        Array.mapi (fun i _ -> if i = 0 then total else 0.) rates)
  in
  check_false "asymmetry detected"
    (Feasibility.symmetric_ok bogus ~mu:2. [| 0.3; 0.9; 0.1 |])

let test_feasibility_rejects_nonconserving () =
  let lazy_server = Service.make ~name:"lazy" (fun ~mu:_ rates -> Array.map (fun _ -> 0.) rates) in
  check_false "non-conservation detected"
    (Feasibility.conservation_ok lazy_server ~mu:2. [| 0.5; 0.5 |])

(* ------------------------------------------------------------------ *)
(* Delay                                                               *)
(* ------------------------------------------------------------------ *)

let test_delay_roundtrip () =
  let hop = { Delay.mu = 4.; latency = 0.25; discipline = Service.fifo } in
  let rates = [| 1.; 2. |] in
  (* FIFO sojourn = 1/(4-3) = 1; two hops: 2*(0.25 + 1) = 2.5. *)
  let d = Delay.roundtrip [ (hop, rates, 0); (hop, rates, 0) ] in
  check_float ~tol:1e-9 "two-hop roundtrip" 2.5 d

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_config =
  QCheck2.Gen.(
    pair
      (array_size (int_range 1 8) (float_range 0. 0.8))
      (float_range 0.5 10.))

let subcritical rates mu = Vec.sum rates < 0.95 *. mu

let prop_conservation svc =
  prop
    (Printf.sprintf "%s conserves work" (Service.name svc))
    gen_config
    (fun (rates, mu) ->
      (not (subcritical rates mu)) || Feasibility.conservation_ok ~tol:1e-6 svc ~mu rates)

let prop_symmetry svc =
  prop
    (Printf.sprintf "%s is symmetric" (Service.name svc))
    gen_config
    (fun (rates, mu) ->
      (not (subcritical rates mu)) || Feasibility.symmetric_ok ~tol:1e-6 svc ~mu rates)

let prop_partial_sums svc =
  prop
    (Printf.sprintf "%s satisfies partial-sum bounds" (Service.name svc))
    gen_config
    (fun (rates, mu) ->
      (not (subcritical rates mu)) || Feasibility.partial_sums_ok ~tol:1e-6 svc ~mu rates)

let prop_order svc =
  prop
    (Printf.sprintf "%s queue order follows rate order" (Service.name svc))
    gen_config
    (fun (rates, mu) ->
      (not (subcritical rates mu)) || Feasibility.order_consistent_ok ~tol:1e-6 svc ~mu rates)

let prop_fs_theorem5 =
  prop "fair share satisfies the Theorem 5 bound" gen_config (fun (rates, mu) ->
      let n = float_of_int (Array.length rates) in
      let q = Fair_share.queue_lengths ~mu rates in
      let ok = ref true in
      Array.iteri
        (fun i qi ->
          let denom = mu -. (n *. rates.(i)) in
          if denom > 0. && Float.is_finite qi then begin
            let bound = rates.(i) /. denom in
            if qi > bound +. 1e-6 then ok := false
          end)
        q;
      !ok)

let prop_fs_triangularity =
  (* Locality: Q_i depends only on rates <= r_i.  Raising a faster
     connection's rate must leave slower queues unchanged. *)
  prop "fair share queues are local (triangular)" gen_config (fun (rates, mu) ->
      let n = Array.length rates in
      if n < 2 then true
      else begin
        let q = Fair_share.queue_lengths ~mu rates in
        let imax = Vec.argmax rates in
        let bumped = Array.copy rates in
        bumped.(imax) <- bumped.(imax) +. 1.;
        let q' = Fair_share.queue_lengths ~mu bumped in
        let ok = ref true in
        Array.iteri
          (fun i qi ->
            if i <> imax && rates.(i) < rates.(imax) && Float.is_finite qi then
              if Float.abs (q'.(i) -. qi) > 1e-9 *. (1. +. qi) then ok := false)
          q;
        !ok
      end)

let suites =
  [
    ( "queueing.mm1",
      [
        case "g" test_g;
        case "g_inv" test_g_inv;
        case "g rejects negative" test_g_negative;
        case "derived quantities" test_mm1_derived;
      ] );
    ( "queueing.fifo",
      [
        case "basic queues" test_fifo_basic;
        case "single connection = M/M/1" test_fifo_single_matches_mm1;
        case "overload" test_fifo_overload;
        case "total queue" test_fifo_total;
        case "uniform sojourn" test_fifo_sojourn_uniform;
        case "input validation" test_fifo_validation;
      ] );
    ( "queueing.priority",
      [
        case "cumulative occupancy" test_priority_cumulative;
        case "per-class occupancy" test_priority_per_class;
        case "high class isolation" test_priority_high_class_isolated;
        case "saturation with empty class" test_priority_saturated_zero_class;
        case "total occupancy" test_priority_total;
      ] );
    ( "queueing.fair_share",
      [
        case "Table 1 decomposition" test_fs_table1_decomposition;
        case "decomposition, unsorted input" test_fs_decomposition_unsorted_input;
        case "level rates" test_fs_level_rates;
        case "fair cumulative load" test_fs_fair_cumulative_load;
        case "two-connection recursion" test_fs_recursion_two_conn;
        case "unsorted input order" test_fs_unsorted_input_order_preserved;
        case "tied rates" test_fs_equal_rates_symmetric;
        case "single connection = M/M/1" test_fs_single_matches_mm1;
        case "work conservation" test_fs_conservation;
        case "isolation under overload" test_fs_isolation_under_overload;
        case "zero rate" test_fs_zero_rate;
        case "zero-rate sojourn fast path" test_fs_sojourn_zero_rate_regression;
        case "FS vs FIFO redistribution" test_fs_vs_fifo_redistribution;
        case "Theorem 5 bound holds for FS" test_fs_theorem5_bound;
        case "Theorem 5 bound fails for FIFO" test_fifo_violates_theorem5_bound;
      ] );
    ( "queueing.service",
      [
        case "dispatch" test_service_dispatch;
        case "processor sharing = FIFO in-model" test_processor_sharing_equals_fifo;
        case "sojourn at zero rate" test_service_sojourn_zero_rate;
        case "feasibility: fifo" test_feasibility_fifo;
        case "feasibility: fair share" test_feasibility_fs;
        case "feasibility rejects asymmetric" test_feasibility_rejects_bogus;
        case "feasibility rejects non-conserving" test_feasibility_rejects_nonconserving;
        case "roundtrip delay" test_delay_roundtrip;
        prop_conservation Service.fifo;
        prop_conservation Service.fair_share;
        prop_symmetry Service.fifo;
        prop_symmetry Service.fair_share;
        prop_partial_sums Service.fifo;
        prop_partial_sums Service.fair_share;
        prop_order Service.fifo;
        prop_order Service.fair_share;
        prop_fs_theorem5;
        prop_fs_triangularity;
      ] );
  ]
