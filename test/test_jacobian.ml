open Ffc_numerics
open Ffc_topology
open Ffc_core
open Test_util

let test_numeric_linear_map () =
  (* Jacobian of an affine map recovers its matrix exactly. *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let f x = Mat.mul_vec a x in
  let j = Jacobian.numeric f ~at:[| 0.3; 0.7 |] in
  check_true "exact for linear maps" (Mat.approx_equal ~tol:1e-6 j a)

let test_numeric_nonlinear () =
  (* f(x,y) = (x^2, x*y): J = [[2x, 0], [y, x]]. *)
  let f v = [| v.(0) ** 2.; v.(0) *. v.(1) |] in
  let j = Jacobian.numeric f ~at:[| 2.; 3. |] in
  check_float ~tol:1e-5 "d(x^2)/dx" 4. (Mat.get j 0 0);
  check_float ~tol:1e-5 "d(x^2)/dy" 0. (Mat.get j 0 1);
  check_float ~tol:1e-5 "d(xy)/dx" 3. (Mat.get j 1 0);
  check_float ~tol:1e-5 "d(xy)/dy" 2. (Mat.get j 1 1)

let test_modes_agree_on_smooth_map () =
  let f v = [| sin v.(0); cos v.(1) |] in
  let at = [| 0.4; 0.9 |] in
  let c = Jacobian.numeric ~mode:Jacobian.Central f ~at in
  let fwd = Jacobian.numeric ~mode:Jacobian.Forward f ~at in
  let bwd = Jacobian.numeric ~mode:Jacobian.Backward f ~at in
  check_true "central ~ forward" (Mat.approx_equal ~tol:1e-5 c fwd);
  check_true "central ~ backward" (Mat.approx_equal ~tol:1e-5 c bwd)

let test_aggregate_df_matches_paper () =
  (* Section 3.3: at a single gateway with B = C/(1+C) and f = eta(beta-b),
     DF_ij = delta_ij - eta exactly. *)
  let n = 4 and eta = 0.1 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:(Rate_adjust.additive ~eta ~beta:0.5)
      ~n
  in
  let fair = Array.make n (0.5 /. float_of_int n) in
  let df = Jacobian.of_controller c ~net ~at:fair in
  let expected = Mat.init n n (fun i j -> (if i = j then 1. else 0.) -. eta) in
  check_true "DF = I - eta * ones" (Mat.approx_equal ~tol:1e-5 df expected)

let test_aggregate_eigenvalue_formula () =
  (* Leading eigenvalue 1 - eta*N (plus N-1 unit eigenvalues along the
     steady-state manifold). *)
  let n = 6 and eta = 0.3 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:(Rate_adjust.additive ~eta ~beta:0.5)
      ~n
  in
  let fair = Array.make n (0.5 /. float_of_int n) in
  let df = Jacobian.of_controller c ~net ~at:fair in
  let ev = Eigen.eigenvalues_sorted df in
  let smallest = Array.fold_left (fun acc z -> Float.min acc z.Complex.re) 1. ev in
  check_float ~tol:1e-4 "leading eigenvalue 1 - eta N"
    (1. -. (eta *. float_of_int n))
    smallest

let test_unilateral_vs_systemic_gap () =
  (* eta = 0.1, N = 30: |DF_ii| = 0.9 < 1 (unilaterally stable) yet the
     eigenvalue 1 - 3 = -2 breaks systemic stability — the paper's
     counterexample. *)
  let n = 30 and eta = 0.1 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:(Rate_adjust.additive ~eta ~beta:0.5)
      ~n
  in
  let fair = Array.make n (0.5 /. float_of_int n) in
  let df = Jacobian.of_controller c ~net ~at:fair in
  check_true "unilaterally stable" (Jacobian.unilaterally_stable df);
  check_false "systemically unstable"
    (Jacobian.systemically_stable ~ignore_unit:(n - 1) df);
  check_float ~tol:1e-3 "spectral radius = |1 - eta N|" 2. (Jacobian.spectral_radius df)

let heterogeneous_fs_controller () =
  (* Individual + FS with distinct betas gives a steady state with
     distinct rates — the clean setting for Theorem 4's triangularity. *)
  let net = Topologies.single ~n:2 () in
  let c =
    Controller.create ~config:Feedback.individual_fair_share
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
  in
  (net, c)

let test_fs_triangular_df () =
  let net, c = heterogeneous_fs_controller () in
  match Controller.run c ~net ~r0:[| 0.1; 0.1 |] with
  | Controller.Converged { steady; _ } ->
    (* Steady state from Section 3: r = (0.15, 0.55). *)
    check_vec ~tol:1e-5 "steady rates" [| 0.15; 0.55 |] steady;
    let df = Jacobian.of_controller ~mode:Jacobian.Forward c ~net ~at:steady in
    check_true "DF triangular in rate order"
      (Jacobian.triangular_in_rate_order ~tol:1e-4 df ~rates:steady);
    check_true "unilateral implies systemic here"
      (Jacobian.unilaterally_stable df = Jacobian.systemically_stable df)
  | _ -> Alcotest.fail "heterogeneous FS system should converge"

let test_fifo_df_not_triangular () =
  (* The same heterogeneous setting under FIFO couples all connections:
     DF has no triangular structure. *)
  let net = Topologies.single ~n:2 () in
  let c =
    Controller.create ~config:Feedback.individual_fifo
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
  in
  match Controller.run c ~net ~r0:[| 0.1; 0.1 |] with
  | Controller.Converged { steady; _ } ->
    let df = Jacobian.of_controller ~mode:Jacobian.Forward c ~net ~at:steady in
    check_false "FIFO DF is full"
      (Jacobian.triangular_in_rate_order ~tol:1e-4 df ~rates:steady)
  | _ -> Alcotest.fail "heterogeneous FIFO system should converge"

(* A Fair Share population with distinct betas (so distinct steady
   rates) and a distinct-rate evaluation point. *)
let fs_population n =
  let net = Topologies.single ~mu:1. ~n () in
  let adjusters =
    Array.init n (fun i ->
        let beta = 0.2 +. (0.6 *. (float_of_int i +. 0.5) /. float_of_int n) in
        Rate_adjust.additive ~eta:0.1 ~beta)
  in
  (net, Controller.create ~config:Feedback.individual_fair_share ~adjusters)

let distinct_point n =
  let scale = 0.5 /. (float_of_int n *. float_of_int (n + 1) /. 2.) in
  Array.init n (fun i -> scale *. float_of_int (i + 1))

let test_jobs_bit_identical () =
  (* Pooled columns must reproduce the sequential Jacobian bit for bit,
     in every difference mode — the determinism contract of the pool. *)
  let n = 24 in
  let net, c = fs_population n in
  let at = distinct_point n in
  List.iter
    (fun (name, mode) ->
      let a = Jacobian.of_controller ~jobs:1 ~mode c ~net ~at in
      let b = Jacobian.of_controller ~jobs:8 ~mode c ~net ~at in
      check_true (name ^ ": jobs=1 and jobs=8 bit-identical")
        (Mat.to_flat a = Mat.to_flat b))
    [
      ("central", Jacobian.Central);
      ("forward", Jacobian.Forward);
      ("backward", Jacobian.Backward);
    ]

let test_fs_fast_path_matches_dense_qr () =
  (* Random converged FS populations: the exact-zero structure detection
     must fire on the numeric Jacobian, and the Theorem-4 diagonal read
     must agree with the dense QR iteration on the same matrix to 1e-9. *)
  let rng = Rng.create 7 in
  for trial = 1 to 5 do
    let n = 3 + Rng.int rng 6 in
    let net, c = fs_population n in
    let r0 = Array.init n (fun _ -> Rng.range rng 0.01 0.2) in
    match Controller.run ~max_steps:40_000 c ~net ~r0 with
    | Controller.Converged { steady; _ } ->
      let df = Jacobian.of_controller c ~net ~at:steady in
      check_true
        (Printf.sprintf "trial %d: structure detected" trial)
        (Eigen.structural_eigenvalues df <> None);
      check_float ~tol:1e-9
        (Printf.sprintf "trial %d: fast radius = dense radius" trial)
        (Eigen.spectral_radius_dense df)
        (Eigen.spectral_radius df);
      let moduli ev =
        let ms = Array.map Complex.norm ev in
        Array.sort Float.compare ms;
        ms
      in
      check_vec ~tol:1e-9
        (Printf.sprintf "trial %d: fast eigenvalues = dense QR" trial)
        (moduli (Eigen.eigenvalues_dense df))
        (moduli (Eigen.eigenvalues df))
    | _ -> Alcotest.failf "trial %d: FS population should converge" trial
  done

let test_diagonal_accessor () =
  let m = Mat.of_arrays [| [| 0.5; 9. |]; [| 9.; -0.25 |] |] in
  check_vec "diagonal" [| 0.5; -0.25 |] (Jacobian.diagonal m);
  check_true "unilateral on diagonal only" (Jacobian.unilaterally_stable m)

let suites =
  [
    ( "core.jacobian",
      [
        case "linear map exact" test_numeric_linear_map;
        case "nonlinear map" test_numeric_nonlinear;
        case "modes agree when smooth" test_modes_agree_on_smooth_map;
        case "aggregate DF = I - eta*ones (paper)" test_aggregate_df_matches_paper;
        case "eigenvalue 1 - eta*N (paper)" test_aggregate_eigenvalue_formula;
        case "unilateral/systemic gap (paper)" test_unilateral_vs_systemic_gap;
        case "Theorem 4: FS triangular DF" test_fs_triangular_df;
        case "FIFO DF not triangular" test_fifo_df_not_triangular;
        case "pooled columns bit-identical" test_jobs_bit_identical;
        case "FS fast path matches dense QR" test_fs_fast_path_matches_dense_qr;
        case "diagonal accessor" test_diagonal_accessor;
      ] );
  ]
