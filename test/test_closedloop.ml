open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_desim
open Ffc_closedloop
open Test_util

(* ------------------------------------------------------------------ *)
(* Controllable sources                                                *)
(* ------------------------------------------------------------------ *)

let test_set_rate_changes_rate () =
  let sim = Sim.create () in
  let rng = Rng.create 3 in
  let pool = Packet.Pool.create () in
  let count = ref 0 in
  let src =
    Source.create ~sim ~rng ~pool ~conn:0 ~rate:1.
      ~emit:(fun p -> incr count; Packet.Pool.free pool p) ()
  in
  Source.start src;
  Sim.run ~until:1000. sim;
  let at_low_rate = !count in
  Source.set_rate src 10.;
  Sim.run ~until:2000. sim;
  let extra = !count - at_low_rate in
  check_true "rate increase takes effect" (extra > 5 * at_low_rate);
  check_float "rate accessor" 10. (Source.rate src)

let test_set_rate_zero_stops () =
  let sim = Sim.create () in
  let rng = Rng.create 5 in
  let pool = Packet.Pool.create () in
  let count = ref 0 in
  let src =
    Source.create ~sim ~rng ~pool ~conn:0 ~rate:5.
      ~emit:(fun p -> incr count; Packet.Pool.free pool p) ()
  in
  Source.start src;
  Sim.run ~until:100. sim;
  Source.set_rate src 0.;
  Sim.run ~until:101. sim; (* drain the one pending arrival *)
  let frozen = !count in
  Sim.run ~until:1000. sim;
  Alcotest.(check int) "no emissions at rate 0" frozen !count

let test_set_rate_restarts_stopped_source () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let pool = Packet.Pool.create () in
  let count = ref 0 in
  let src =
    Source.create ~sim ~rng ~pool ~conn:0 ~rate:0.
      ~emit:(fun p -> incr count; Packet.Pool.free pool p) ()
  in
  Source.start src;
  Sim.run ~until:100. sim;
  Alcotest.(check int) "zero-rate source silent" 0 !count;
  Source.set_rate src 5.;
  Sim.run ~until:200. sim;
  check_true "restarted source emits" (!count > 100)

let test_set_rate_validation () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let pool = Packet.Pool.create () in
  let src = Source.create ~sim ~rng ~pool ~conn:0 ~rate:1. ~emit:(fun _ -> ()) () in
  Alcotest.check_raises "negative rate rejected"
    (Invalid_argument "Source: rate must be finite and non-negative") (fun () ->
      Source.set_rate src (-1.))

(* ------------------------------------------------------------------ *)
(* Closed loop                                                         *)
(* ------------------------------------------------------------------ *)

let signal = Signal.linear_fractional

let run_homogeneous discipline =
  let n = 2 in
  let net = Topologies.single ~mu:1. ~n () in
  Closed_loop.run ~net ~discipline ~style:Congestion.Individual ~signal
    ~adjusters:(Array.make n Scenario.standard_adjuster)
    ~r0:(Array.make n 0.05) ~interval:300. ~updates:100 ~seed:9 ()

let test_closed_loop_converges_to_fair_point () =
  let r = run_homogeneous Closed_loop.Fs_priority in
  Array.iter
    (fun rate -> check_float ~tol:0.05 "near fair share 0.25" 0.25 rate)
    r.Closed_loop.mean_tail_rates

let test_closed_loop_fifo_also_fair () =
  let r = run_homogeneous Closed_loop.Fifo in
  Array.iter
    (fun rate -> check_float ~tol:0.05 "near fair share 0.25" 0.25 rate)
    r.Closed_loop.mean_tail_rates

let test_closed_loop_result_shapes () =
  let r = run_homogeneous Closed_loop.Fs_priority in
  Alcotest.(check int) "one time per update" 100 (Array.length r.Closed_loop.times);
  Alcotest.(check int) "one rate vector per update" 100 (Array.length r.Closed_loop.rates);
  Alcotest.(check int) "one signal vector per update" 100
    (Array.length r.Closed_loop.signals);
  check_true "times increase"
    (Array.for_all2 ( < )
       (Array.sub r.Closed_loop.times 0 99)
       (Array.sub r.Closed_loop.times 1 99));
  Array.iter
    (fun b -> Array.iter (fun s -> check_true "signal in [0,1]" (s >= 0. && s <= 1.)) b)
    r.Closed_loop.signals

let test_closed_loop_determinism () =
  let a = run_homogeneous Closed_loop.Fs_priority in
  let b = run_homogeneous Closed_loop.Fs_priority in
  check_vec "same seed, same tail rates" a.Closed_loop.mean_tail_rates
    b.Closed_loop.mean_tail_rates

let test_closed_loop_heterogeneous_fs_robust () =
  let net = Topologies.single ~mu:1. ~n:2 () in
  let r =
    Closed_loop.run ~net ~discipline:Closed_loop.Fs_priority
      ~style:Congestion.Individual ~signal
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
      ~r0:[| 0.2; 0.2 |] ~interval:400. ~updates:120 ~seed:4 ()
  in
  let tail = r.Closed_loop.mean_tail_rates in
  check_true "timid near its baseline 0.15" (tail.(0) > 0.12);
  check_true "greedy above timid" (tail.(1) > tail.(0))

let test_closed_loop_aggregate_starves () =
  let net = Topologies.single ~mu:1. ~n:2 () in
  let r =
    Closed_loop.run ~net ~discipline:Closed_loop.Fifo ~style:Congestion.Aggregate
      ~signal
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
      ~r0:[| 0.2; 0.2 |] ~interval:400. ~updates:120 ~seed:4 ()
  in
  let tail = r.Closed_loop.mean_tail_rates in
  check_true "timid starved in the live loop" (tail.(0) < 0.02)

let test_closed_loop_validation () =
  let net = Topologies.single ~n:2 () in
  let adjusters = Array.make 2 Scenario.standard_adjuster in
  check_true "bad interval rejected"
    (try
       ignore
         (Closed_loop.run ~net ~discipline:Closed_loop.Fifo
            ~style:Congestion.Individual ~signal ~adjusters ~r0:[| 0.1; 0.1 |]
            ~interval:0. ~updates:10 ~seed:1 ());
       false
     with Invalid_argument _ -> true);
  check_true "r0 length mismatch rejected"
    (try
       ignore
         (Closed_loop.run ~net ~discipline:Closed_loop.Fifo
            ~style:Congestion.Individual ~signal ~adjusters ~r0:[| 0.1 |]
            ~interval:10. ~updates:10 ~seed:1 ());
       false
     with Invalid_argument _ -> true)

let test_closed_loop_multi_gateway () =
  (* Parking lot under the live loop: allocations must track max-min. *)
  let net = Topologies.parking_lot ~hops:2 () in
  let n = Network.num_connections net in
  let predicted = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  let r =
    Closed_loop.run ~net ~discipline:Closed_loop.Fs_priority
      ~style:Congestion.Individual ~signal
      ~adjusters:(Array.make n Scenario.standard_adjuster)
      ~r0:(Array.make n 0.05) ~interval:400. ~updates:120 ~seed:6 ()
  in
  Array.iteri
    (fun i rate ->
      check_true
        (Printf.sprintf "conn %d within 20%% of prediction" i)
        (Float.abs (rate -. predicted.(i)) < 0.2 *. predicted.(i)))
    r.Closed_loop.mean_tail_rates

(* ------------------------------------------------------------------ *)
(* Drop-tail buffers + implicit feedback                               *)
(* ------------------------------------------------------------------ *)

let test_buffer_limit_drops () =
  let sim = Sim.create () in
  let rng = Rng.create 11 in
  let pool = Packet.Pool.create () in
  let drops = ref 0 and delivered = ref 0 in
  let server =
    Server.create ~sim ~rng ~pool ~mu:1. ~qdisc:Qdisc.Fifo ~buffer_limit:5
      ~on_drop:(fun p -> incr drops; Packet.Pool.free pool p)
      ~on_depart:(fun p -> incr delivered; Packet.Pool.free pool p)
      ()
  in
  let src =
    Source.create ~sim ~rng:(Rng.split rng) ~pool ~conn:0 ~rate:3.
      ~emit:(fun pkt -> Server.inject server pkt)
      ()
  in
  Source.start src;
  Sim.run ~until:5_000. sim;
  check_true "overloaded drop-tail drops" (!drops > 100);
  check_true "occupancy bounded by limit" (Server.in_system server <= 5);
  (* Delivered rate is capped near mu. *)
  check_true "goodput near capacity"
    (float_of_int !delivered /. 5_000. > 0.9
    && float_of_int !delivered /. 5_000. < 1.05)

let test_no_buffer_limit_never_drops () =
  let sim = Sim.create () in
  let rng = Rng.create 13 in
  let pool = Packet.Pool.create () in
  let drops = ref 0 in
  let server =
    Server.create ~sim ~rng ~pool ~mu:1. ~qdisc:Qdisc.Fifo
      ~on_drop:(fun _ -> incr drops)
      ~on_depart:(fun p -> Packet.Pool.free pool p)
      ()
  in
  let src =
    Source.create ~sim ~rng:(Rng.split rng) ~pool ~conn:0 ~rate:2.
      ~emit:(fun pkt -> Server.inject server pkt)
      ()
  in
  Source.start src;
  Sim.run ~until:1_000. sim;
  Alcotest.(check int) "infinite buffer never drops" 0 !drops

let test_measure_drops () =
  let m = Measure.create () in
  Measure.count_drop m ~conn:2;
  Measure.count_drop m ~conn:2;
  Alcotest.(check int) "two drops" 2 (Measure.drops m ~conn:2);
  Alcotest.(check int) "unseen conn" 0 (Measure.drops m ~conn:0);
  Measure.reset m ~now:1.;
  Alcotest.(check int) "drops cleared by reset" 0 (Measure.drops m ~conn:2)

let test_drop_tail_loop_controls_congestion () =
  let net = Topologies.single ~mu:1. ~n:2 () in
  let r =
    Ffc_closedloop.Closed_loop.run_drop_tail ~net ~buffer:20
      ~adjusters:(Array.make 2 (Rate_adjust.aimd ~increase:0.02 ~decrease:0.3))
      ~r0:[| 0.1; 0.3 |] ~interval:200. ~updates:150 ~seed:21 ()
  in
  check_true "utilization meaningful"
    (r.Closed_loop.mean_utilization > 0.5 && r.Closed_loop.mean_utilization < 1.0);
  check_true "loss small" (Vec.max r.Closed_loop.drop_fraction < 0.05);
  check_true "roughly fair"
    (Stats.jain_index r.Closed_loop.dr_mean_tail_rates > 0.9)

let test_drop_tail_validation () =
  let net = Topologies.single ~n:1 () in
  check_true "buffer >= 1 enforced"
    (try
       ignore
         (Ffc_closedloop.Closed_loop.run_drop_tail ~net ~buffer:0
            ~adjusters:[| Rate_adjust.aimd ~increase:0.02 ~decrease:0.3 |]
            ~r0:[| 0.1 |] ~interval:10. ~updates:5 ~seed:1 ());
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "closedloop",
      [
        case "set_rate changes rate" test_set_rate_changes_rate;
        case "set_rate zero stops" test_set_rate_zero_stops;
        case "set_rate restarts" test_set_rate_restarts_stopped_source;
        case "set_rate validation" test_set_rate_validation;
        case "converges to fair point (FS)" test_closed_loop_converges_to_fair_point;
        case "converges to fair point (FIFO)" test_closed_loop_fifo_also_fair;
        case "result shapes" test_closed_loop_result_shapes;
        case "determinism" test_closed_loop_determinism;
        case "heterogeneous FS robust" test_closed_loop_heterogeneous_fs_robust;
        case "aggregate starves live" test_closed_loop_aggregate_starves;
        case "input validation" test_closed_loop_validation;
        case "multi-gateway max-min" test_closed_loop_multi_gateway;
        case "drop-tail buffer drops" test_buffer_limit_drops;
        case "infinite buffer never drops" test_no_buffer_limit_never_drops;
        case "measure drop counters" test_measure_drops;
        case "drop-driven AIMD controls congestion" test_drop_tail_loop_controls_congestion;
        case "drop-tail validation" test_drop_tail_validation;
      ] );
  ]
