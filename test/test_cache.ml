(* The result cache: canonical keys, the memo protocol, corruption and
   invalidation behavior, and end-to-end determinism of the memoized
   kernels (cached values bit-identical to fresh ones at any jobs
   count). *)

open Ffc_cache
open Ffc_topology
open Ffc_core

let temp_dir () = Filename.temp_dir "ffc-cache-test" ""

(* Run [f cache dir] against a fresh store and always scrub it. *)
let with_temp_cache ?schema f =
  let dir = temp_dir () in
  let c = Cache.create ~dir ?schema () in
  Fun.protect
    ~finally:(fun () ->
      Store.clear (Cache.store c);
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () -> f c dir)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let check_counters label c ~hits ~misses ~stores ~evictions =
  let k = Cache.counters c in
  Alcotest.(check (list int))
    (label ^ " counters [hits; misses; stores; evictions]")
    [ hits; misses; stores; evictions ]
    [ k.Cache.hits; k.Cache.misses; k.Cache.stores; k.Cache.evictions ]

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)
(* ------------------------------------------------------------------ *)

let reference_key ?schema () =
  let k = Key.create ?schema ~tier:"pin" () in
  Key.str k "alpha";
  Key.int k 42;
  Key.float k 1.5;
  Key.floats k [| 0.; -0.; infinity |];
  Key.bool k true;
  Key.strs k [ "x"; "yz" ];
  Key.hex k

(* The digest is a pure function of the inputs — the same in every
   process, on every run, on every architecture (the encoding is fixed
   little-endian).  Pinning the exact hex makes any accidental change
   to the canonical encoding (which would silently orphan every
   on-disk cache) a test failure. *)
let test_key_pinned () =
  Alcotest.(check string)
    "pinned digest" "4c123e0fab23e4ecab83e6440548f0cb" (reference_key ());
  Alcotest.(check string)
    "stable across calls" (reference_key ()) (reference_key ())

let test_key_sensitivity () =
  let base = reference_key () in
  let variant ?(tier = "pin") build =
    let k = Key.create ~tier () in
    build k;
    Key.hex k
  in
  (* Every entry must hash differently from every other: changed field
     values, a changed tier, a changed schema — and, crucially, framing
     injectivity: concatenations that would collide under a naive
     (unframed) encoding must stay distinct. *)
  let all =
    [
      base;
      reference_key ~schema:"ffc0-test" ();
      variant (fun k -> Key.str k "alpha");
      variant (fun k -> Key.str k "alphb");
      variant (fun k ->
          Key.str k "al";
          Key.str k "pha");
      variant (fun k -> Key.strs k [ "x"; "yz" ]);
      variant (fun k -> Key.strs k [ "xy"; "z" ]);
      variant (fun k -> Key.float k 0.);
      variant (fun k -> Key.float k (-0.));
      variant (fun k -> Key.int k 0);
      variant (fun _ -> ());
      variant ~tier:"pin2" (fun _ -> ());
    ]
  in
  List.iteri
    (fun i hi ->
      List.iteri
        (fun j hj ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "keys %d and %d differ" i j)
              true (hi <> hj))
        all)
    all

(* ------------------------------------------------------------------ *)
(* Memo protocol                                                       *)
(* ------------------------------------------------------------------ *)

let memo_floats ~calls value () =
  let build k = Key.str k "memo-test" in
  Cache.memo ~tier:"test" ~build
    ~encode:(fun v -> Codec.encode (fun b -> Codec.put_floats b v))
    ~decode:Codec.get_floats
    (fun () ->
      incr calls;
      value)

let test_memo_hit_miss () =
  with_temp_cache (fun c _dir ->
      Cache.with_cache c (fun () ->
          let calls = ref 0 in
          let value = [| 1.5; -2.25; 0.125 |] in
          let a = memo_floats ~calls value () in
          let b = memo_floats ~calls value () in
          Alcotest.(check int) "computed exactly once" 1 !calls;
          Alcotest.(check bool) "miss value bit-exact" true (bits_equal value a);
          Alcotest.(check bool) "hit value bit-exact" true (bits_equal value b);
          check_counters "after miss+hit" c ~hits:1 ~misses:1 ~stores:1
            ~evictions:0))

let test_memo_off_without_cache () =
  (* No ambient cache: memo degrades to plain computation every time. *)
  let calls = ref 0 in
  let value = [| 3.5 |] in
  let a = memo_floats ~calls value () in
  let b = memo_floats ~calls value () in
  Alcotest.(check int) "computed every time" 2 !calls;
  Alcotest.(check bool) "values pass through" true
    (bits_equal value a && bits_equal value b)

let entry_file c =
  (* The entry the memo-protocol tests create, located by rebuilding
     its key exactly as [Cache.memo] does. *)
  let k = Key.create ~tier:"test" () in
  Key.str k "memo-test";
  Store.entry_path (Cache.store c) ~hex:(Key.hex k)

let test_corrupt_entry_is_eviction () =
  with_temp_cache (fun c _dir ->
      Cache.with_cache c (fun () ->
          let calls = ref 0 in
          let value = [| 7.; 8. |] in
          ignore (memo_floats ~calls value ());
          let path = entry_file c in
          Alcotest.(check bool) "entry exists on disk" true
            (Sys.file_exists path);
          (* Truncate the payload mid-float. *)
          let oc = open_out path in
          output_string oc "ffc-cache-entry v1 test 16\ngarba";
          close_out oc;
          let back = memo_floats ~calls value () in
          Alcotest.(check int) "recomputed after corruption" 2 !calls;
          Alcotest.(check bool) "recomputed value intact" true
            (bits_equal value back);
          (* The corrupt probe counts as a miss (hits + misses always
             equals lookups) plus an eviction. *)
          check_counters "after corrupt probe" c ~hits:0 ~misses:2 ~stores:2
            ~evictions:1;
          (* The republished entry is healthy again. *)
          ignore (memo_floats ~calls value ());
          Alcotest.(check int) "hit after republish" 2 !calls))

let test_garbage_entry_is_eviction () =
  with_temp_cache (fun c _dir ->
      Cache.with_cache c (fun () ->
          let calls = ref 0 in
          let value = [| 1. |] in
          ignore (memo_floats ~calls value ());
          let oc = open_out (entry_file c) in
          output_string oc "not a cache entry at all";
          close_out oc;
          ignore (memo_floats ~calls value ());
          Alcotest.(check int) "recomputed" 2 !calls;
          let k = Cache.counters c in
          Alcotest.(check int) "evicted" 1 k.Cache.evictions))

let test_schema_bump_invalidates () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      Store.clear (Store.create ~root:dir ());
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let calls = ref 0 in
      let value = [| 4.5 |] in
      let run schema =
        let c = Cache.create ~dir ~schema () in
        Cache.with_cache c (fun () -> ignore (memo_floats ~calls value ()));
        Cache.counters c
      in
      let k1 = run "schema-A" in
      Alcotest.(check int) "cold miss" 1 k1.Cache.misses;
      let k2 = run "schema-B" in
      Alcotest.(check int) "bumped schema misses" 1 k2.Cache.misses;
      Alcotest.(check int) "bumped schema never hits" 0 k2.Cache.hits;
      let k3 = run "schema-A" in
      Alcotest.(check int) "original schema still hits" 1 k3.Cache.hits;
      Alcotest.(check int) "three computations total" 2 !calls)

let test_clear_is_scoped () =
  let dir = temp_dir () in
  let sibling = Filename.concat dir "KEEP_ME.txt" in
  let oc = open_out sibling in
  output_string oc "not cache data\n";
  close_out oc;
  let c = Cache.create ~dir () in
  Cache.with_cache c (fun () ->
      ignore (memo_floats ~calls:(ref 0) [| 1. |] ()));
  Cache.write_run_stats c;
  let versioned = Filename.concat dir Store.layout_version in
  Alcotest.(check bool) "entry tree exists" true (Sys.file_exists versioned);
  Store.clear (Cache.store c);
  Alcotest.(check bool) "entry tree removed" false (Sys.file_exists versioned);
  Alcotest.(check bool) "run stats removed" false
    (Sys.file_exists (Store.run_stats_path (Cache.store c)));
  Alcotest.(check bool) "sibling file untouched" true (Sys.file_exists sibling);
  Alcotest.(check bool) "non-empty root kept" true (Sys.file_exists dir);
  Sys.remove sibling;
  Store.clear (Cache.store c);
  Alcotest.(check bool) "empty root removed" false (Sys.file_exists dir)

(* ------------------------------------------------------------------ *)
(* Memoized kernels: cached == uncached, bit for bit, at any jobs      *)
(* ------------------------------------------------------------------ *)

let test_kernels_cached_equals_uncached () =
  let net = Topologies.single ~mu:1. ~n:3 () in
  let signal = Signal.linear_fractional in
  let fair_fresh = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  let adjusters = Array.make 3 (Window.additive_tsi ~eta:0.1 ~beta:0.5) in
  let w0 = [| 0.1; 0.2; 0.3 |] in
  let run_windows () =
    Window.run Feedback.individual_fair_share ~net ~adjusters ~w0
  in
  let windows_fresh = run_windows () in
  with_temp_cache (fun c _dir ->
      Cache.with_cache c (fun () ->
          let fair_miss = Steady_state.fair ~signal ~b_ss:0.5 ~net in
          let fair_hit = Steady_state.fair ~signal ~b_ss:0.5 ~net in
          Alcotest.(check bool) "fair: cached == fresh" true
            (bits_equal fair_fresh fair_miss && bits_equal fair_fresh fair_hit);
          let w_miss = run_windows () in
          let w_hit = run_windows () in
          (match (windows_fresh, w_miss, w_hit) with
          | ( Window.Converged { windows = a; rates = ra; steps = sa },
              Window.Converged { windows = b; rates = rb; steps = sb },
              Window.Converged { windows = d; rates = rd; steps = sd } ) ->
            Alcotest.(check (list int)) "window steps equal" [ sa; sa ] [ sb; sd ];
            Alcotest.(check bool) "window vectors bit-exact" true
              (bits_equal a b && bits_equal a d);
            Alcotest.(check bool) "rate vectors bit-exact" true
              (bits_equal ra rb && bits_equal ra rd)
          | _ -> Alcotest.fail "window dynamics should converge");
          Alcotest.(check bool) "kernel lookups hit on replay" true
            ((Cache.counters c).Cache.hits >= 2)))

let test_jacobian_jobs_invariant () =
  let n = 4 in
  let net = Topologies.single ~mu:1. ~n () in
  let controller =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:(Rate_adjust.additive ~eta:0.1 ~beta:0.5)
      ~n
  in
  let at = Array.make n (0.5 /. float_of_int n) in
  let fresh = Jacobian.of_controller ~jobs:1 controller ~net ~at in
  with_temp_cache (fun c _dir ->
      Cache.with_cache c (fun () ->
          let df1 = Jacobian.of_controller ~jobs:1 controller ~net ~at in
          let before = (Cache.counters c).Cache.hits in
          (* jobs is excluded from the key: a different jobs count must
             replay the same entry, not recompute. *)
          let df2 = Jacobian.of_controller ~jobs:2 controller ~net ~at in
          Alcotest.(check int) "jobs=2 replays the jobs=1 entry" (before + 1)
            (Cache.counters c).Cache.hits;
          Alcotest.(check bool) "jacobian bit-exact across jobs and cache" true
            (bits_equal (Ffc_numerics.Mat.to_flat fresh)
               (Ffc_numerics.Mat.to_flat df1)
            && bits_equal (Ffc_numerics.Mat.to_flat fresh)
                 (Ffc_numerics.Mat.to_flat df2))))

let suites =
  [
    ( "cache",
      [
        Alcotest.test_case "pinned key digest" `Quick test_key_pinned;
        Alcotest.test_case "key sensitivity & injectivity" `Quick
          test_key_sensitivity;
        Alcotest.test_case "memo hit/miss protocol" `Quick test_memo_hit_miss;
        Alcotest.test_case "memo off without ambient cache" `Quick
          test_memo_off_without_cache;
        Alcotest.test_case "truncated entry evicts & recomputes" `Quick
          test_corrupt_entry_is_eviction;
        Alcotest.test_case "garbage entry evicts & recomputes" `Quick
          test_garbage_entry_is_eviction;
        Alcotest.test_case "schema bump invalidates" `Quick
          test_schema_bump_invalidates;
        Alcotest.test_case "clear touches only cache data" `Quick
          test_clear_is_scoped;
        Alcotest.test_case "kernels: cached == uncached" `Quick
          test_kernels_cached_equals_uncached;
        Alcotest.test_case "jacobian entry is jobs-invariant" `Quick
          test_jacobian_jobs_invariant;
      ] );
  ]
