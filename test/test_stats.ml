open Ffc_numerics
open Test_util

let test_running_moments () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.running_count r);
  check_float "mean" 5. (Stats.running_mean r);
  check_float ~tol:1e-9 "variance (unbiased)" (32. /. 7.) (Stats.running_variance r)

let test_running_empty () =
  let r = Stats.running_create () in
  check_float "empty mean" 0. (Stats.running_mean r);
  check_float "empty variance" 0. (Stats.running_variance r);
  check_float "empty ci" 0. (Stats.running_ci95_halfwidth r)

let test_running_single () =
  let r = Stats.running_create () in
  Stats.running_add r 3.;
  check_float "single mean" 3. (Stats.running_mean r);
  check_float "single variance" 0. (Stats.running_variance r)

let test_ci_shrinks () =
  let widths =
    List.map
      (fun n ->
        let r = Stats.running_create () in
        let rng = Rng.create 1 in
        for _ = 1 to n do
          Stats.running_add r (Rng.uniform rng)
        done;
        Stats.running_ci95_halfwidth r)
      [ 100; 10_000 ]
  in
  match widths with
  | [ w1; w2 ] -> check_true "ci narrows with n" (w2 < w1)
  | _ -> assert false

let test_time_weighted () =
  let acc = Stats.tw_create () in
  (* Value 0 on [0,1), 2 on [1,3), 1 on [3,4). Average = (0+4+1)/4 = 1.25. *)
  Stats.tw_observe acc ~now:1. ~value:2.;
  Stats.tw_observe acc ~now:3. ~value:1.;
  check_float "time average" 1.25 (Stats.tw_mean acc ~now:4.)

let test_time_weighted_empty_window () =
  let acc = Stats.tw_create () in
  check_float "empty window" 0. (Stats.tw_mean acc ~now:0.)

let test_time_weighted_backwards () =
  let acc = Stats.tw_create () in
  Stats.tw_observe acc ~now:5. ~value:1.;
  Alcotest.check_raises "backwards time rejected"
    (Invalid_argument "Stats.tw_observe: time went backwards") (fun () ->
      Stats.tw_observe acc ~now:4. ~value:2.)

let test_batch_stats () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float ~tol:1e-12 "variance" (5. /. 3.) (Stats.variance xs);
  check_float "empty mean" 0. (Stats.mean [||])

let test_quantiles () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 4. (Stats.quantile xs 1.);
  check_float "q25" 1.75 (Stats.quantile xs 0.25)

let test_quantile_edges () =
  (* n = 1: every p returns the lone value. *)
  List.iter
    (fun p -> check_float (Printf.sprintf "n=1 p=%g" p) 7. (Stats.quantile [| 7. |] p))
    [ 0.; 0.25; 0.5; 1. ];
  (* p = 0 / p = 1 hit the extremes exactly, with no index overflow. *)
  let xs = Array.init 1000 (fun i -> float_of_int i) in
  check_float "p=0" 0. (Stats.quantile xs 0.);
  check_float "p=1" 999. (Stats.quantile xs 1.);
  (* Just below 1: pos = p*(n-1) sits a hair under n-1, so truncation
     must yield n-2 and interpolate, not read past the end. *)
  let p = Float.pred 1. in
  let q = Stats.quantile xs p in
  check_true "p just below 1 stays in range" (q <= 999. && q > 998.);
  (* A p whose pos lands exactly on an integer after rounding. *)
  check_float "pos on integer boundary" 250. (Stats.quantile xs (250. /. 999.));
  (* Two elements interpolate linearly. *)
  check_float "n=2 midpoint" 1.5 (Stats.quantile [| 1.; 2. |] 0.5)

let test_quantile_invalid () =
  Alcotest.check_raises "empty quantile" (Invalid_argument "Stats.quantile: empty array")
    (fun () -> ignore (Stats.quantile [||] 0.5))

let test_quantile_non_finite () =
  (* Regression: NaN sorts past +inf under Float.compare, so it used to
     leak NaN out of the upper quantiles only — now any NaN input is
     rejected up front, at every p. *)
  List.iter
    (fun p ->
      Alcotest.check_raises
        (Printf.sprintf "NaN rejected at p=%g" p)
        (Invalid_argument "Stats.quantile: NaN in input")
        (fun () -> ignore (Stats.quantile [| 1.; Float.nan; 3. |] p)))
    [ 0.; 0.5; 1. ];
  (* ±∞ is orderable: it must rank correctly and never turn into NaN via
     the 0·∞ interpolation term. *)
  let xs = [| Float.neg_infinity; 1.; 2.; Float.infinity |] in
  check_true "p=0 is -inf" (Stats.quantile xs 0. = Float.neg_infinity);
  check_true "p=1 is +inf" (Stats.quantile xs 1. = Float.infinity);
  check_float "interior quantile stays finite" 1.5 (Stats.quantile xs 0.5);
  check_true "interpolating toward +inf is +inf"
    (Stats.quantile [| 1.; Float.infinity |] 0.25 = Float.infinity);
  check_float "median of all-inf is inf (no NaN from equal endpoints)"
    Float.infinity
    (Stats.quantile [| Float.infinity; Float.infinity |] 0.5)

let test_autocorrelation () =
  (* Alternating series has lag-1 autocorrelation close to -1. *)
  let xs = Array.init 100 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  check_true "alternating series anticorrelated" (Stats.autocorrelation xs 1 < -0.9);
  check_float "lag 0 is 1" 1. (Stats.autocorrelation xs 0);
  check_float "constant series" 0. (Stats.autocorrelation (Array.make 10 2.) 1)

let test_histogram () =
  let xs = [| 0.; 0.1; 0.2; 0.9; 1. |] in
  let h = Stats.histogram ~bins:2 xs in
  let counts = Stats.histogram_counts h in
  Alcotest.(check int) "two bins" 2 (Array.length counts);
  let _, _, c0 = counts.(0) and _, _, c1 = counts.(1) in
  Alcotest.(check int) "low bin" 3 c0;
  Alcotest.(check int) "high bin" 2 c1

let test_histogram_edges () =
  (* The maximum lands in the last bin, not a phantom bin past the end. *)
  let h = Stats.histogram ~bins:4 [| 0.; 1.; 2.; 3.; 4. |] in
  Alcotest.(check (array int)) "max folded into last bin" [| 1; 1; 1; 2 |]
    (Array.map (fun (_, _, c) -> c) (Stats.histogram_counts h));
  (* All-equal input: degenerate width falls back to 1, everything in
     bin 0. *)
  let h = Stats.histogram ~bins:3 (Array.make 5 2.5) in
  Alcotest.(check (array int)) "degenerate range" [| 5; 0; 0 |]
    (Array.map (fun (_, _, c) -> c) (Stats.histogram_counts h));
  (* A value a float-ulp below a bin edge stays in the lower bin. *)
  let h = Stats.histogram ~bins:2 [| 0.; Float.pred 1.; 2. |] in
  Alcotest.(check (array int)) "ulp below the edge" [| 2; 1 |]
    (Array.map (fun (_, _, c) -> c) (Stats.histogram_counts h));
  (* Single element: lo = hi, one occupied bin. *)
  let h = Stats.histogram ~bins:2 [| 42. |] in
  Alcotest.(check (array int)) "singleton" [| 1; 0 |]
    (Array.map (fun (_, _, c) -> c) (Stats.histogram_counts h))

let test_jain_index () =
  check_float "equal allocation" 1. (Stats.jain_index [| 2.; 2.; 2. |]);
  check_float ~tol:1e-12 "one hog" 0.25 (Stats.jain_index [| 1.; 0.; 0.; 0. |]);
  check_float "empty" 1. (Stats.jain_index [||]);
  check_float "all zero" 1. (Stats.jain_index [| 0.; 0. |])

let test_max_min_ratio () =
  check_float "equal" 1. (Stats.max_min_ratio [| 3.; 3. |]);
  check_float "ratio" 4. (Stats.max_min_ratio [| 1.; 4. |]);
  check_true "starvation is infinite" (Stats.max_min_ratio [| 1.; 0. |] = Float.infinity);
  check_float "all zero is 1" 1. (Stats.max_min_ratio [| 0.; 0. |])

let test_max_min_ratio_invalid () =
  (* Regression: [| -1.; 0. |] has mx = 0 and used to return the all-zero
     convention's 1.0; negative allocations are now rejected, as is NaN. *)
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Stats.max_min_ratio: negative allocation")
    (fun () -> ignore (Stats.max_min_ratio [| -1.; 0. |]));
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.max_min_ratio: NaN in input")
    (fun () -> ignore (Stats.max_min_ratio [| 1.; Float.nan |]));
  check_true "infinite allocation allowed"
    (Stats.max_min_ratio [| 1.; Float.infinity |] = Float.infinity)

let gen_xs = QCheck2.Gen.(array_size (int_range 2 50) (float_range 0.001 100.))

let prop_jain_bounds =
  prop "jain index in (0,1]" gen_xs (fun xs ->
      let j = Stats.jain_index xs in
      j > 0. && j <= 1. +. 1e-12)

let prop_running_matches_batch =
  prop "running mean matches batch mean" gen_xs (fun xs ->
      let r = Stats.running_create () in
      Array.iter (Stats.running_add r) xs;
      Float.abs (Stats.running_mean r -. Stats.mean xs) <= 1e-9 *. (1. +. Stats.mean xs))

let prop_quantile_monotone =
  prop "quantiles monotone in p" gen_xs (fun xs ->
      Stats.quantile xs 0.25 <= Stats.quantile xs 0.75 +. 1e-12)

let suites =
  [
    ( "numerics.stats",
      [
        case "running moments" test_running_moments;
        case "running empty" test_running_empty;
        case "running single" test_running_single;
        case "ci shrinks" test_ci_shrinks;
        case "time-weighted average" test_time_weighted;
        case "time-weighted empty window" test_time_weighted_empty_window;
        case "time-weighted backwards time" test_time_weighted_backwards;
        case "batch stats" test_batch_stats;
        case "quantiles" test_quantiles;
        case "quantile edges" test_quantile_edges;
        case "quantile invalid" test_quantile_invalid;
        case "quantile non-finite input" test_quantile_non_finite;
        case "autocorrelation" test_autocorrelation;
        case "histogram" test_histogram;
        case "histogram edges" test_histogram_edges;
        case "jain index" test_jain_index;
        case "max/min ratio" test_max_min_ratio;
        case "max/min ratio invalid input" test_max_min_ratio_invalid;
        prop_jain_bounds;
        prop_running_matches_batch;
        prop_quantile_monotone;
      ] );
  ]
