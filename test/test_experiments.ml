open Ffc_experiments
open Test_util

(* Each experiment's compute() is asserted against the paper's claim, and
   every rendered report must be non-trivial text. *)

let contains s sub =
  let n = String.length sub in
  let found = ref false in
  for i = 0 to String.length s - n do
    if String.sub s i n = sub then found := true
  done;
  !found

let test_registry_complete () =
  Alcotest.(check int) "27 experiments" 27 (List.length Registry.all);
  List.iter
    (fun e ->
      check_true (e.Exp_common.id ^ " findable") (Registry.find e.Exp_common.id <> None))
    Registry.all;
  check_true "case-insensitive lookup" (Registry.find "e5" <> None);
  check_true "unknown id rejected"
    (match Registry.run_one "E99" with Error _ -> true | Ok _ -> false)

let test_e1_table () =
  let d = E01_table1.compute () in
  (* Row sums recover rates; first column is constant r1. *)
  Array.iteri
    (fun i row ->
      check_float
        (Printf.sprintf "row %d sums to rate" i)
        E01_table1.rates.(i)
        (Array.fold_left ( +. ) 0. row);
      check_float (Printf.sprintf "row %d level A" i) E01_table1.rates.(0) row.(0))
    d;
  (* Strictly upper part is zero. *)
  check_float "conn1 has no level B" 0. d.(0).(1)

let test_e2_verdicts () =
  let rows = E02_tsi.compute () in
  List.iter
    (fun r ->
      let expect_scale, expect_lat =
        match r.E02_tsi.algorithm with
        | "additive (TSI)" -> (true, true)
        | "fair-rate LIMD" -> (false, true)
        | "DECbit window" -> (false, false)
        | other -> Alcotest.failf "unexpected algorithm %s" other
      in
      check_true
        (r.E02_tsi.algorithm ^ " scaling verdict")
        (r.E02_tsi.scales_linearly = expect_scale);
      check_true
        (r.E02_tsi.algorithm ^ " latency verdict")
        (r.E02_tsi.latency_invariant = expect_lat))
    rows

let test_e3_manifold () =
  let r = E03_aggregate_fairness.compute ~runs:10 () in
  check_true "several steady states" (Array.length r.E03_aggregate_fairness.steady_states >= 8);
  Array.iter
    (fun total -> check_float ~tol:1e-6 "total = beta*mu" 0.5 total)
    r.E03_aggregate_fairness.totals;
  Alcotest.(check int) "random starts never fair" 0 r.E03_aggregate_fairness.fair_count;
  check_true "construction is steady" r.E03_aggregate_fairness.constructed_is_steady;
  check_true "construction is fair" r.E03_aggregate_fairness.constructed_is_fair

let test_e4_all_fair () =
  let r = E04_individual_fairness.compute ~trials:6 () in
  check_true "runs converged" (r.E04_individual_fairness.converged > 0);
  Alcotest.(check int) "all fair" r.E04_individual_fairness.converged
    r.E04_individual_fairness.fair;
  Alcotest.(check int) "all matched prediction" r.E04_individual_fairness.converged
    r.E04_individual_fairness.matched_prediction

let test_e5_threshold () =
  let rows = E05_stability.compute ~eta:0.1 ~ns:[ 5; 19; 21; 30 ] () in
  List.iter
    (fun row ->
      let expected = row.E05_stability.n < 20 in
      check_true
        (Printf.sprintf "N=%d convergence matches eigenvalue" row.E05_stability.n)
        (row.E05_stability.converged = expected);
      check_float ~tol:1e-3 "measured eigenvalue = 1 - eta*N"
        row.E05_stability.predicted_eigenvalue row.E05_stability.measured_eigenvalue)
    rows

let test_e6_progression () =
  check_true "scalar reduction exact" (E06_chaos.reduction_is_exact ());
  let rows = E06_chaos.compute ~ns:[ 8; 16; 19; 22 ] () in
  let get n =
    (List.find (fun r -> r.E06_chaos.n = n) rows).E06_chaos.untruncated
  in
  Alcotest.(check string) "N=8 stable" "fixed-point" (get 8);
  Alcotest.(check string) "N=16 oscillatory" "period-2" (get 16);
  check_true "N=19 chaotic" (contains (get 19) "chaotic");
  Alcotest.(check string) "N=22 divergent" "divergent" (get 22);
  (* The clamped model map never diverges. *)
  List.iter
    (fun r ->
      check_false
        (Printf.sprintf "clamped N=%d bounded" r.E06_chaos.n)
        (contains r.E06_chaos.truncated "divergent"))
    rows

let test_e7_theorem4 () =
  let s = E07_triangular.compute ~trials:5 () in
  check_true "FS runs converged" (s.E07_triangular.fs_converged > 0);
  Alcotest.(check int) "FS always triangular" s.E07_triangular.fs_converged
    s.E07_triangular.fs_triangular;
  Alcotest.(check int) "FS unilateral = systemic" s.E07_triangular.fs_converged
    s.E07_triangular.fs_unilateral_eq_systemic;
  Alcotest.(check int) "FIFO never triangular" 0 s.E07_triangular.fifo_triangular

let test_e8_starvation () =
  let r = E08_starvation.compute ~steps:500 () in
  check_float ~tol:1e-6 "timid starved" 0. r.E08_starvation.final.(0);
  check_float ~tol:1e-4 "greedy at prediction" r.E08_starvation.predicted_greedy
    r.E08_starvation.final.(1)

let test_e9_matrix () =
  let r = E09_robustness.compute ~trials:200 () in
  check_float "FS violation rate zero" 0. r.E09_robustness.fs_violation_rate;
  check_true "FIFO violates" (r.E09_robustness.fifo_violation_rate > 0.2);
  Alcotest.(check int) "three designs ran" 3 (List.length r.E09_robustness.matrix);
  List.iter
    (fun row ->
      let expected = row.E09_robustness.design = "individual+fair-share" in
      check_true
        (row.E09_robustness.design ^ " robustness verdict")
        (row.E09_robustness.robust = expected))
    r.E09_robustness.matrix

let test_e10_decbit () =
  let r = E10_decbit.compute () in
  check_true "window form biased against long RTT"
    (r.E10_decbit.window_rates.(0) > 1.5 *. r.E10_decbit.window_rates.(1));
  check_true "rate form fair" r.E10_decbit.rate_fair;
  check_true "rate form not TSI" (r.E10_decbit.rate_tsi_violation > 0.3)

let test_e11_factor_n () =
  let rows = E11_delay.compute ~ns:[ 2; 8; 32 ] () in
  List.iter
    (fun row ->
      check_float ~tol:1e-6
        (Printf.sprintf "ratio = N at N=%d" row.E11_delay.n)
        (float_of_int row.E11_delay.n)
        row.E11_delay.ratio)
    rows

let test_e12_agreement () =
  let rows = E12_validation.compute ~horizon:30_000. () in
  List.iter
    (fun row ->
      if row.E12_validation.discipline <> "fair-queueing" then
        check_true
          (Printf.sprintf "%s conn %d within 10%%" row.E12_validation.discipline
             row.E12_validation.conn)
          (row.E12_validation.rel_error < 0.1))
    rows

let test_e13_margin_shrinks () =
  let rows = E13_asynchrony.compute ~taus:[ 0; 2; 8 ] () in
  let eta_at tau =
    (List.find (fun r -> r.E13_asynchrony.tau = tau) rows).E13_asynchrony.max_stable_eta
  in
  check_true "delay shrinks stability margin" (eta_at 0 > eta_at 2);
  check_true "large delay shrinks it further" (eta_at 2 >= eta_at 8)

let test_e14_binary () =
  let rows = E14_binary_feedback.compute ~mus:[ 1.; 4. ] () in
  List.iter
    (fun r ->
      check_true "oscillation detected" (r.E14_binary_feedback.period > 0);
      check_true "fair averages" r.E14_binary_feedback.fair_averages)
    rows;
  let period mu =
    (List.find (fun r -> r.E14_binary_feedback.mu = mu) rows).E14_binary_feedback.period
  in
  (* Period grows roughly linearly with mu (x4 rate -> between x2.5 and x6). *)
  let ratio = float_of_int (period 4.) /. float_of_int (period 1.) in
  check_true "period scales with mu" (ratio > 2.5 && ratio < 6.);
  let tsi mu =
    (List.find (fun r -> r.E14_binary_feedback.mu = mu) rows)
      .E14_binary_feedback.avg_total_over_mu
  in
  check_float ~tol:0.02 "averages TSI across mu" (tsi 1.) (tsi 4.)

let test_e15_async () =
  let rows = E15_async.compute ~ps:[ 1.0; 0.3 ] () in
  List.iter
    (fun r ->
      check_true (r.E15_async.design ^ " converged") r.E15_async.converged;
      check_true (r.E15_async.design ^ " fair") r.E15_async.reached_fair_point)
    rows

let test_e16_ablation () =
  let rows = E16_signal_ablation.compute () in
  Alcotest.(check int) "six families" 6 (List.length rows);
  List.iter
    (fun r ->
      check_float ~tol:1e-4
        (r.E16_signal_ablation.signal ^ " measured = predicted rho")
        r.E16_signal_ablation.rho_predicted r.E16_signal_ablation.rho_measured;
      check_true (r.E16_signal_ablation.signal ^ " fair") r.E16_signal_ablation.fair)
    rows;
  (* Utilizations genuinely differ across families. *)
  let rhos = List.map (fun r -> r.E16_signal_ablation.rho_predicted) rows in
  check_true "spread of operating points"
    (List.fold_left Float.max 0. rhos -. List.fold_left Float.min 1. rhos > 0.3)

let test_e17_closed_loop () =
  let r = E17_closed_loop.compute ~interval:300. ~updates:80 () in
  List.iter
    (fun row ->
      check_true
        (row.E17_closed_loop.discipline ^ " close to water-filling")
        (row.E17_closed_loop.max_rel_err < 0.15))
    r.E17_closed_loop.homogeneous;
  List.iter
    (fun row ->
      let expected = row.E17_closed_loop.design = "individual+fair-share" in
      check_true
        (row.E17_closed_loop.design ^ " baseline verdict")
        (row.E17_closed_loop.timid_meets_baseline = expected))
    r.E17_closed_loop.heterogeneous

let test_e18_weighted () =
  let r = E18_weighted.compute ~weights:[| 1.; 3. |] () in
  check_true "proportional allocation" r.E18_weighted.proportional;
  check_vec ~tol:1e-5 "matches weighted prediction" r.E18_weighted.predicted
    r.E18_weighted.steady

let test_e19_implicit () =
  let r = E19_implicit.compute () in
  check_true "utilization controlled"
    (r.E19_implicit.utilization > 0.5 && r.E19_implicit.utilization < 1.0);
  check_true "loss small" (r.E19_implicit.drop_fraction < 0.05);
  check_true "identical sources roughly fair" (r.E19_implicit.jain > 0.9);
  check_true "gentler backoff biased" r.E19_implicit.hetero_biased

let test_e20_game () =
  let rows = E20_game.compute ~ns:[ 2; 4 ] () in
  List.iter
    (fun r ->
      check_true
        (Printf.sprintf "%s N=%d %s verified" r.E20_game.discipline r.E20_game.n
           r.E20_game.start)
        r.E20_game.verified;
      if r.E20_game.discipline = "fair-share" then begin
        Alcotest.(check int)
          (Printf.sprintf "FS excludes nobody (N=%d)" r.E20_game.n)
          0 r.E20_game.excluded;
        (* Linear-utility FS equilibria hit the symmetric optimum. *)
        if r.E20_game.utility = "r - 0.01W" then
          check_float ~tol:1e-3 "FS welfare = optimum" r.E20_game.optimum_welfare
            r.E20_game.welfare
      end)
    rows;
  (* FIFO excludes someone at N=2 under both utilities. *)
  List.iter
    (fun r ->
      if r.E20_game.discipline = "fifo" && r.E20_game.n = 2 then
        check_true "FIFO N=2 excludes a source" (r.E20_game.excluded >= 1))
    rows

let test_e21_window () =
  let r = E21_window.compute () in
  check_float ~tol:0.01 "DECbit rate ratio = delay ratio" r.E21_window.delay_ratio
    r.E21_window.decbit_rate_ratio;
  check_float ~tol:1e-6 "DECbit windows equal" r.E21_window.decbit_windows.(0)
    r.E21_window.decbit_windows.(1);
  check_true "TSI window form fair" r.E21_window.tsi_fair;
  check_true "windows cannot overload" (r.E21_window.giant_window_utilization < 1.)

let test_e22_gain () =
  let rows = E22_gain.compute ~etas:[ 0.1; 0.6 ] () in
  let get eta design =
    List.find
      (fun r -> r.E22_gain.eta = eta && r.E22_gain.design = design)
      rows
  in
  (* At eta = 0.1 everything converges; FS contracts faster than FIFO. *)
  let fs = get 0.1 "individual+fair-share" and fifo = get 0.1 "individual+fifo" in
  check_true "both converge at eta=0.1" (fs.E22_gain.converged && fifo.E22_gain.converged);
  check_true "FS spectral radius below FIFO's"
    (fs.E22_gain.spectral_radius < fifo.E22_gain.spectral_radius -. 0.01);
  check_true "FS converges in fewer steps" (fs.E22_gain.steps < fifo.E22_gain.steps);
  (* At eta = 0.6 the radius exceeds 1 and nothing converges. *)
  List.iter
    (fun d ->
      let r = get 0.6 d in
      check_false (d ^ " diverges at eta=0.6") r.E22_gain.converged;
      check_true (d ^ " radius >= 1") (r.E22_gain.spectral_radius >= 1. -. 1e-6))
    [ "aggregate"; "individual+fifo"; "individual+fair-share" ]

let test_e23_scale () =
  let rows = E23_scale.compute ~sizes:[ (4, 8); (8, 20) ] () in
  List.iter
    (fun r ->
      check_true "converged" r.E23_scale.converged;
      check_true "fair" r.E23_scale.fair;
      check_true "matched water-filling" r.E23_scale.matched_prediction)
    rows

(* Parallel sweeps must be schedule-independent: per-task SplitMix64
   streams plus index-ordered collection make rows identical whatever
   the jobs count. *)
let test_sweeps_jobs_invariant () =
  let strip23 (r : E23_scale.row) =
    (r.gateways, r.connections, r.converged, r.fair, r.matched_prediction, r.steps)
  in
  let sizes = [ (4, 8); (8, 20) ] in
  let seq = List.map strip23 (E23_scale.compute ~sizes ~jobs:1 ()) in
  let par = List.map strip23 (E23_scale.compute ~sizes ~jobs:4 ()) in
  check_true "E23 rows identical at jobs=1 and jobs=4" (seq = par);
  let ns = [ 8; 16; 19; 22 ] in
  check_true "E6 rows identical at jobs=1 and jobs=4"
    (E06_chaos.compute ~ns ~jobs:1 () = E06_chaos.compute ~ns ~jobs:4 ());
  let saved = Ffc_numerics.Pool.default_jobs () in
  Ffc_numerics.Pool.set_default_jobs 1;
  let diagram_seq = E06_chaos.bifurcation_diagram () in
  Ffc_numerics.Pool.set_default_jobs 4;
  let diagram_par = E06_chaos.bifurcation_diagram () in
  Ffc_numerics.Pool.set_default_jobs saved;
  check_true "E6 bifurcation diagram identical at jobs=1 and jobs=4"
    (String.equal diagram_seq diagram_par)

let test_e24_transient () =
  let r = E24_transient.compute () in
  List.iter
    (fun (v : E24_transient.validation_row) ->
      check_true "settled" v.E24_transient.settled;
      check_true "at fair point" v.E24_transient.at_fair_point)
    r.E24_transient.validation;
  (* Single hop stays stable at every tested gain; 3 hops lose it at 80. *)
  List.iter
    (fun (p : E24_transient.phase_row) ->
      let expected = not (p.E24_transient.hops = 3 && p.E24_transient.gain = 80.) in
      check_true
        (Printf.sprintf "hops=%d gain=%g verdict" p.E24_transient.hops
           p.E24_transient.gain)
        (p.E24_transient.settled = expected))
    r.E24_transient.phase;
  (* Critical gain grows with mu. *)
  let gains = List.map (fun (t : E24_transient.tsi_row) -> t.E24_transient.critical_gain)
      r.E24_transient.tsi in
  (match gains with
  | [ a; b; c ] -> check_true "monotone in mu" (a < b && b < c && c > 4. *. a)
  | _ -> Alcotest.fail "three mu values expected")

let test_e26_churn () =
  let s = E26_churn.compute ~lots:3 ~hops:2 ~steps:10 () in
  check_true "incremental within tolerance at every step"
    s.E26_churn.all_within;
  (* rates and DF agree bit for bit by construction, not just within tol. *)
  check_float "rates deviation exactly 0" 0. s.E26_churn.max_d_rates;
  check_float "DF deviation exactly 0" 0. s.E26_churn.max_d_df;
  check_true "pattern genuinely sparse"
    (s.E26_churn.nnz * 2 <= s.E26_churn.n * s.E26_churn.n);
  check_true "probe groups = hops + 1" (s.E26_churn.groups = 3)

let test_e27_million () =
  (* Reduced-scale smoke of the scale capstone: the same code paths as
     the 10^5-flow run, with CI-sized flow counts. *)
  let s =
    E27_million.compute ~flows:[ 400; 2_000 ] ~closed_flows:2_000 ~updates:4 ()
  in
  Alcotest.(check int) "two open-loop rows" 2 (List.length s.E27_million.rows);
  List.iter
    (fun (r : E27_million.row) ->
      check_true "flows match requested lots" (r.E27_million.flows mod 4 = 0);
      check_true "events executed" (r.E27_million.events > 0);
      check_true "packets delivered" (r.E27_million.deliveries > 0);
      check_true "probe delay positive" (r.E27_million.delay > 0.);
      match r.E27_million.shard_invariant with
      | Some ok -> check_true "sharded run matches unsharded bit for bit" ok
      | None -> Alcotest.fail "reduced rows must be invariance-checked")
    s.E27_million.rows;
  let c = s.E27_million.closed in
  check_true "closed loop moved off r0"
    (c.E27_million.cl_long_rate > 0.1 || c.E27_million.cl_cross_rate > 0.1);
  check_true "closed loop roughly fair" (c.E27_million.cl_jain > 0.8)

let test_all_reports_render () =
  (* Smoke: every report renders with its id header and some content.
     (This also exercises the full harness end to end.) *)
  List.iter
    (fun e ->
      let s = Exp_common.render e in
      check_true (e.Exp_common.id ^ " header present") (contains s e.Exp_common.id);
      check_true (e.Exp_common.id ^ " non-trivial") (String.length s > 200))
    (List.filter
       (fun e -> List.mem e.Exp_common.id [ "E1"; "E5"; "E8"; "E11" ])
       Registry.all)

let suites =
  [
    ( "experiments",
      [
        case "registry completeness" test_registry_complete;
        case "E1: Table 1 invariants" test_e1_table;
        case "E2: TSI verdicts" test_e2_verdicts;
        case "E3: aggregate manifold" test_e3_manifold;
        case "E4: individual fairness sweep" test_e4_all_fair;
        case "E5: stability threshold" test_e5_threshold;
        case "E6: chaos progression" test_e6_progression;
        case "E7: Theorem 4 sweep" test_e7_theorem4;
        case "E8: starvation endpoint" test_e8_starvation;
        case "E9: robustness matrix" test_e9_matrix;
        case "E10: DECbit verdicts" test_e10_decbit;
        case "E11: delay factor N" test_e11_factor_n;
        case "E12: simulation agreement" test_e12_agreement;
        case "E13: delayed-feedback margin" test_e13_margin_shrinks;
        case "E14: binary feedback oscillation" test_e14_binary;
        case "E15: async schedules" test_e15_async;
        case "E16: signal ablation" test_e16_ablation;
        case "E17: closed loop" test_e17_closed_loop;
        case "E18: weighted fair share" test_e18_weighted;
        case "E19: implicit feedback" test_e19_implicit;
        case "E20: gateway game" test_e20_game;
        case "E21: window control" test_e21_window;
        case "E22: gain ablation" test_e22_gain;
        case "E23: scale stress" test_e23_scale;
        case "parallel sweeps are jobs-invariant" test_sweeps_jobs_invariant;
        case "E24: transient fluid model" test_e24_transient;
        case "E26: churn incremental updates" test_e26_churn;
        case "E27: million-flow desim" test_e27_million;
        case "report rendering" test_all_reports_render;
      ] );
  ]
