open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_faults
open Ffc_experiments
open Test_util

let single n = Topologies.single ~mu:1. ~n ()
let additive = Rate_adjust.additive ~eta:0.1 ~beta:0.5

let controller ?(config = Feedback.individual_fair_share) n =
  Controller.homogeneous ~config ~adjuster:additive ~n

(* Drive an injector from r0 for [steps] steps, returning all states. *)
let drive inj ~r0 ~steps =
  let out = Array.make (steps + 1) r0 in
  for k = 1 to steps do
    out.(k) <- Injector.step inj ~step:(k - 1) out.(k - 1)
  done;
  out

let test_plan_validation () =
  let net = single 2 in
  let rejects spec =
    try
      Fault.validate (Fault.plan [ spec ]) ~net;
      false
    with Invalid_argument _ -> true
  in
  check_true "stale lag 0" (rejects (Fault.everywhere (Fault.Stale { lag = 0 })));
  check_true "loss p > 1" (rejects (Fault.everywhere (Fault.Lossy { p = 1.5 })));
  check_true "negative sigma" (rejects (Fault.everywhere (Fault.Noisy { sigma = -1. })));
  check_true "threshold 1" (rejects (Fault.everywhere (Fault.Quantized { threshold = 1. })));
  check_true "conn out of range" (rejects (Fault.on [ 2 ] Fault.Dead));
  check_true "empty conn list" (rejects (Fault.on [] Fault.Dead));
  check_true "greedy infinite cap"
    (rejects (Fault.everywhere (Fault.Greedy { ramp = 0.1; cap = Float.infinity })));
  check_true "gateway out of range"
    (rejects
       (Fault.everywhere
          (Fault.Gateway_cut { gw = 1; fraction = 0.5; from_step = 0; until_step = None })));
  check_true "cut until <= from"
    (rejects
       (Fault.everywhere
          (Fault.Gateway_cut { gw = 0; fraction = 0.5; from_step = 5; until_step = Some 5 })));
  check_true "dead and greedy on same connection"
    (try
       Fault.validate
         (Fault.plan
            [ Fault.on [ 0 ] Fault.Dead;
              Fault.on [ 0 ] (Fault.Greedy { ramp = 0.1; cap = 1. }) ])
         ~net;
       false
     with Invalid_argument _ -> true);
  (* A sane plan passes. *)
  Fault.validate
    (Fault.plan [ Fault.on [ 1 ] (Fault.Stale { lag = 2 }) ])
    ~net

let test_empty_plan_is_exact () =
  (* The unfaulted path must be bit-identical to Controller.step, not
     merely close. *)
  let net = single 3 in
  let c = controller 3 in
  let inj = Injector.create c ~net in
  let r0 = [| 0.05; 0.2; 0.4 |] in
  let faulted = drive inj ~r0 ~steps:40 in
  let plain = Controller.trajectory c ~net ~r0 ~steps:40 in
  Array.iteri (fun k v -> check_vec ~tol:0. (Printf.sprintf "step %d" k) plain.(k) v) faulted

let test_neutral_severities_are_exact () =
  (* p = 0 loss and sigma = 0 noise compile to the unfaulted update. *)
  let net = single 2 in
  let c = controller 2 in
  let plan =
    Fault.plan
      [ Fault.everywhere (Fault.Lossy { p = 0. });
        Fault.everywhere (Fault.Noisy { sigma = 0. }) ]
  in
  let inj = Injector.create ~plan c ~net in
  let r0 = [| 0.1; 0.3 |] in
  let faulted = drive inj ~r0 ~steps:30 in
  let plain = Controller.trajectory c ~net ~r0 ~steps:30 in
  Array.iteri (fun k v -> check_vec ~tol:0. (Printf.sprintf "step %d" k) plain.(k) v) faulted

let test_lossy_one_freezes () =
  let net = single 2 in
  let c = controller 2 in
  let plan = Fault.plan [ Fault.on [ 0 ] (Fault.Lossy { p = 1. }) ] in
  let inj = Injector.create ~plan c ~net in
  let traj = drive inj ~r0:[| 0.1; 0.3 |] ~steps:20 in
  Array.iter (fun v -> check_float ~tol:0. "dropped every step" 0.1 v.(0)) traj;
  check_true "other connection still adjusts" (traj.(20).(1) <> 0.3)

let test_dead_holds_and_greedy_ramps () =
  let net = single 3 in
  let c = controller 3 in
  let plan =
    Fault.plan
      [ Fault.on [ 0 ] Fault.Dead;
        Fault.on [ 1 ] (Fault.Greedy { ramp = 0.25; cap = 0.6 }) ]
  in
  let inj = Injector.create ~plan c ~net in
  let traj = drive inj ~r0:[| 0.1; 0.1; 0.1 |] ~steps:5 in
  Array.iter (fun v -> check_float ~tol:0. "dead holds its rate" 0.1 v.(0)) traj;
  check_float ~tol:1e-12 "greedy ramps" 0.35 traj.(1).(1);
  check_float ~tol:1e-12 "greedy ramps again" 0.6 traj.(2).(1);
  check_float ~tol:1e-12 "greedy pinned at cap" 0.6 traj.(5).(1)

let test_stale_uses_old_signal () =
  (* With lag 1 the perturbed connection adjusts on the signal from one
     step earlier; verify against a hand-driven replay. *)
  let net = single 2 in
  let c = controller 2 in
  let plan = Fault.plan [ Fault.on [ 0 ] (Fault.Stale { lag = 1 }) ] in
  let inj = Injector.create ~plan c ~net in
  let r0 = [| 0.1; 0.3 |] in
  let traj = drive inj ~r0 ~steps:3 in
  (* Replay: b^k is the true signal at step k; conn 0 at step k >= 1 uses
     b^{k-1}_0, step 0 uses b^0_0 (no older signal exists). *)
  let config = Controller.config c in
  let signal k_rates = fst (Feedback.evaluate config ~net ~rates:k_rates) in
  let delay k_rates = snd (Feedback.evaluate config ~net ~rates:k_rates) in
  let b0 = signal r0 and d0 = delay r0 in
  let step_manual ~b ~d rates =
    Array.mapi
      (fun i r -> Float.max 0. (r +. Rate_adjust.eval additive ~r ~b:b.(i) ~d:d.(i)))
      rates
  in
  let r1_expected = step_manual ~b:b0 ~d:d0 r0 in
  check_vec ~tol:0. "step 0 falls back to the oldest signal" r1_expected traj.(1);
  let b1 = signal traj.(1) and d1 = delay traj.(1) in
  let r2_expected =
    [|
      Float.max 0.
        (traj.(1).(0)
        +. Rate_adjust.eval additive ~r:traj.(1).(0) ~b:b0.(0) ~d:d1.(0));
      Float.max 0.
        (traj.(1).(1)
        +. Rate_adjust.eval additive ~r:traj.(1).(1) ~b:b1.(1) ~d:d1.(1));
    |]
  in
  check_vec ~tol:0. "step 1 uses the lagged signal on conn 0" r2_expected traj.(2)

let test_stochastic_faults_deterministic () =
  (* Same plan, same seed: bit-identical trajectories. Different seed:
     different trajectory. *)
  let net = single 2 in
  let c = controller 2 in
  let mk seed =
    Fault.plan ~seed
      [ Fault.everywhere (Fault.Lossy { p = 0.4 });
        Fault.everywhere (Fault.Noisy { sigma = 0.05 }) ]
  in
  let r0 = [| 0.1; 0.3 |] in
  let run plan = drive (Injector.create ~plan c ~net) ~r0 ~steps:50 in
  let a = run (mk 7) and b = run (mk 7) and other = run (mk 8) in
  Array.iteri (fun k v -> check_vec ~tol:0. (Printf.sprintf "step %d" k) a.(k) v) b;
  check_true "different seed diverges"
    (Array.exists2 (fun x y -> not (Vec.approx_equal ~tol:0. x y)) a other)

let test_gateway_cut_windows () =
  let net = single 2 in
  let c = controller 2 in
  let plan =
    Fault.plan
      [
        Fault.everywhere
          (Fault.Gateway_cut { gw = 0; fraction = 0.25; from_step = 5; until_step = Some 10 });
      ]
  in
  let inj = Injector.create ~plan c ~net in
  let mu_at k = (Network.gateway (Injector.net_at inj k) 0).Network.mu in
  check_float ~tol:0. "before the cut" 1. (mu_at 4);
  check_float ~tol:0. "at from_step" 0.25 (mu_at 5);
  check_float ~tol:0. "last degraded step" 0.25 (mu_at 9);
  check_float ~tol:0. "restored at until_step" 1. (mu_at 10);
  check_true "horizon is the cut end" (Fault.horizon plan = 10);
  (* Permanent cut: horizon is the start, degradation persists. *)
  let permanent =
    Fault.plan
      [ Fault.everywhere (Fault.Gateway_cut { gw = 0; fraction = 0.5; from_step = 3; until_step = None }) ]
  in
  let inj = Injector.create ~plan:permanent c ~net in
  check_float ~tol:0. "permanent cut active" 0.5
    ((Network.gateway (Injector.net_at inj 1000) 0).Network.mu);
  check_true "permanent horizon is the start" (Fault.horizon permanent = 3)

let test_transient_cut_recovers () =
  (* A transient capacity cut must not trap the run at the degraded
     equilibrium: the supervisor suppresses convergence until the cut is
     restored, and the system climbs back to the full fair share. *)
  let net = single 4 in
  let c = controller 4 in
  let plan =
    Fault.plan
      [
        Fault.everywhere
          (Fault.Gateway_cut { gw = 0; fraction = 0.5; from_step = 10; until_step = Some 200 });
      ]
  in
  let v = Supervisor.run ~max_steps:4000 ~plan c ~net ~r0:(Array.make 4 0.3) in
  (match v.Supervisor.outcome with
  | Controller.Converged { steady; _ } ->
    check_vec ~tol:1e-6 "back at the undegraded fair point" (Array.make 4 0.125) steady
  | _ -> Alcotest.fail "transient cut should converge after restoration");
  check_float ~tol:1e-9 "full baseline ratio" 1. (Option.get v.Supervisor.min_ratio)

let test_out_of_order_step_rejected () =
  let net = single 1 in
  let plan = Fault.plan [ Fault.everywhere (Fault.Stale { lag = 2 }) ] in
  let inj = Injector.create ~plan (controller 1) ~net in
  let r1 = Injector.step inj ~step:0 [| 0.1 |] in
  check_true "consecutive step fine" (Array.length (Injector.step inj ~step:1 r1) = 1);
  check_true "skipping a step rejected"
    (try
       ignore (Injector.step inj ~step:5 r1);
       false
     with Invalid_argument _ -> true)

let test_supervisor_unfaulted_matches_run () =
  let net = single 3 in
  let c = controller 3 in
  let r0 = [| 0.05; 0.2; 0.4 |] in
  let v = Supervisor.run c ~net ~r0 in
  (match (v.Supervisor.outcome, Controller.run c ~net ~r0) with
  | ( Controller.Converged { steady = a; steps = ka },
      Controller.Converged { steady = b; steps = kb } ) ->
    check_vec ~tol:0. "same steady state" b a;
    Alcotest.(check int) "same step count" kb ka
  | _ -> Alcotest.fail "both should converge");
  Alcotest.(check int) "one attempt" 1 v.Supervisor.attempts;
  check_float ~tol:0. "undamped" 1. v.Supervisor.damping;
  check_false "nothing to recover" v.Supervisor.recovered;
  check_true "no faults listed" (v.Supervisor.faults = []);
  check_float ~tol:1e-9 "at baseline" 1. (Option.get v.Supervisor.min_ratio)

let test_infinite_adjuster_is_divergence () =
  (* Companion to the NaN-adjuster regression in test_controller: an
     adjuster that jumps to +infinity mid-run must degrade to Diverged
     in both the bare run and under the supervisor — never surface as
     the queueing layer's rate-validation invalid_arg. *)
  let net = single 1 in
  let poison =
    Rate_adjust.make ~name:"inf-after-3" (fun ~r ~b:_ ~d:_ ->
        if r > 0.3 then Float.infinity else 0.2)
  in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:poison ~n:1
  in
  (match Controller.run c ~net ~r0:[| 0. |] with
  | Controller.Diverged { at_step } -> check_true "past the clean steps" (at_step > 0)
  | _ -> Alcotest.fail "+inf adjuster must report Diverged");
  let v = Supervisor.run ~retries:0 c ~net ~r0:[| 0. |] in
  match v.Supervisor.outcome with
  | Controller.Diverged _ -> ()
  | _ -> Alcotest.fail "supervisor must classify +inf as divergence"

let test_supervisor_recovers_divergence () =
  (* Proportional gain over a stale signal overshoots the escape
     threshold; a plain run diverges, the damped retry lands on a
     bounded limit cycle above baseline. *)
  let net = single 4 in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:(Rate_adjust.proportional ~eta:2.5 ~beta:0.7)
      ~n:4
  in
  let plan = Fault.plan [ Fault.everywhere (Fault.Stale { lag = 3 }) ] in
  let r0 = Array.make 4 0.3 in
  let plain = Supervisor.run ~max_steps:4000 ~escape:2. ~retries:0 ~plan c ~net ~r0 in
  (match plain.Supervisor.outcome with
  | Controller.Diverged _ -> ()
  | _ -> Alcotest.fail "plain run must diverge");
  check_false "no retries, no recovery" plain.Supervisor.recovered;
  let sup = Supervisor.run ~max_steps:4000 ~escape:2. ~retries:3 ~plan c ~net ~r0 in
  check_true "recovered" sup.Supervisor.recovered;
  check_true "took a retry" (sup.Supervisor.attempts > 1);
  check_true "gain was damped" (sup.Supervisor.damping < 1.);
  (match sup.Supervisor.outcome with
  | Controller.Converged _ | Controller.Cycle _ -> ()
  | _ -> Alcotest.fail "recovery must end on a bounded attractor");
  check_true "bounded orbit above baseline" (Option.get sup.Supervisor.min_ratio > 1.)

let test_supervisor_wall_budget () =
  (* A zero wall budget forbids retries: the diverging cell reports its
     first attempt. *)
  let net = single 4 in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:(Rate_adjust.proportional ~eta:2.5 ~beta:0.7)
      ~n:4
  in
  let plan = Fault.plan [ Fault.everywhere (Fault.Stale { lag = 3 }) ] in
  let v =
    Supervisor.run ~max_steps:4000 ~escape:2. ~retries:3 ~wall_budget:0. ~plan c ~net
      ~r0:(Array.make 4 0.3)
  in
  Alcotest.(check int) "budget stopped the retries" 1 v.Supervisor.attempts;
  match v.Supervisor.outcome with
  | Controller.Diverged _ -> ()
  | _ -> Alcotest.fail "first attempt diverges"

let test_run_map_min_steps () =
  (* A map that is constant early but changes later: without min_steps
     the loop stops at the temporary fixed point; with it, the final
     regime is reached. *)
  let map k _ = if k < 50 then [| 1. |] else [| 2. |] in
  (match Controller.run_map ~map ~r0:[| 1. |] () with
  | Controller.Converged { steady; steps } ->
    check_float ~tol:0. "trapped at the temporary value" 1. steady.(0);
    check_true "stopped before the change" (steps < 50)
  | _ -> Alcotest.fail "constant map converges immediately");
  match Controller.run_map ~min_steps:50 ~map ~r0:[| 1. |] () with
  | Controller.Converged { steady; steps } ->
    check_float ~tol:0. "reached the final regime" 2. steady.(0);
    check_true "verdict after min_steps" (steps >= 50)
  | _ -> Alcotest.fail "map is constant after step 50"

let test_e25_acceptance () =
  let r = E25_stress.compute ~jobs:1 () in
  check_true "fair share robust in all non-destructive cells" r.E25_stress.fs_all_robust;
  let starved = r.E25_stress.aggregate_starved in
  check_true "aggregate starves under a greedy peer" (List.mem "greedy@3" starved);
  check_true "aggregate starves under stale feedback"
    (List.exists (fun c -> String.length c >= 5 && String.sub c 0 5 = "stale") starved);
  check_true "supervisor recovered the diverging cell" r.E25_stress.recovery.E25_stress.recovered;
  check_true "plain run diverged"
    (String.length r.E25_stress.recovery.E25_stress.plain_outcome >= 8
    && String.sub r.E25_stress.recovery.E25_stress.plain_outcome 0 8 = "diverged")

let test_e25_jobs_invariant () =
  (* The stress matrix must be identical at any pool width. *)
  let a = E25_stress.compute ~jobs:1 () and b = E25_stress.compute ~jobs:4 () in
  Alcotest.(check int) "same row count" (List.length a.E25_stress.rows)
    (List.length b.E25_stress.rows);
  List.iter2
    (fun (x : E25_stress.row) (y : E25_stress.row) ->
      Alcotest.(check string) "fault" x.E25_stress.fault y.E25_stress.fault;
      Alcotest.(check string) "design" x.E25_stress.design y.E25_stress.design;
      Alcotest.(check string) "outcome" x.E25_stress.outcome y.E25_stress.outcome;
      Alcotest.(check int) "attempts" x.E25_stress.attempts y.E25_stress.attempts;
      check_true "min_ratio bit-identical" (x.E25_stress.min_ratio = y.E25_stress.min_ratio);
      check_true "robust agrees" (x.E25_stress.robust = y.E25_stress.robust))
    a.E25_stress.rows b.E25_stress.rows

let test_flap_validation () =
  let net = single 2 in
  let rejects spec =
    try
      Fault.validate (Fault.plan [ spec ]) ~net;
      false
    with Invalid_argument _ -> true
  in
  check_true "period < 2" (rejects (Fault.on [ 0 ] (Fault.Flap { period = 1; up = 1 })));
  check_true "up = 0" (rejects (Fault.on [ 0 ] (Fault.Flap { period = 4; up = 0 })));
  check_true "up >= period" (rejects (Fault.on [ 0 ] (Fault.Flap { period = 4; up = 4 })));
  check_true "flap + dead on the same connection"
    (try
       Fault.validate
         (Fault.plan
            [ Fault.on [ 0 ] (Fault.Flap { period = 4; up = 2 });
              Fault.on [ 0 ] Fault.Dead ])
         ~net;
       false
     with Invalid_argument _ -> true);
  Fault.validate (Fault.plan [ Fault.on [ 1 ] (Fault.Flap { period = 4; up = 2 }) ]) ~net

let test_flap_cycles_presence () =
  (* flap(period=6,up=4)@1: present steps 0-3 of each cycle, absent at
     rate 0 for steps 4-5, then rejoining at its pre-drop rate. *)
  let n = 2 in
  let net = single n in
  let c = controller n in
  let plan = Fault.plan [ Fault.on [ 1 ] (Fault.Flap { period = 6; up = 4 }) ] in
  let inj = Injector.create ~plan c ~net in
  let r0 = [| 0.1; 0.1 |] in
  let states = drive inj ~r0 ~steps:24 in
  for k = 1 to 24 do
    let phase = (k - 1) mod 6 in
    if phase >= 4 then
      check_float ~tol:0. (Printf.sprintf "absent at step %d" k) 0. states.(k).(1)
    else
      check_true
        (Printf.sprintf "present at step %d" k)
        (states.(k).(1) > 0.)
  done;
  (* The well-behaved peer keeps evolving and never dies. *)
  check_true "peer keeps a positive rate" (states.(24).(0) > 0.);
  check_true "flapping conns count as misbehaving"
    (Fault.misbehaving plan ~n = [| false; true |]);
  check_true "describe mentions the flap"
    (List.exists
       (fun s -> s = "flap(period=6,up=4)@1")
       (Fault.describe plan))

let test_verdict_to_json () =
  let n = 2 in
  let net = single n in
  let c = controller n in
  let v = Supervisor.run c ~net ~r0:[| 0.02; 0.02 |] in
  let j = Supervisor.verdict_to_json ~label:"unit" v in
  let has needle =
    let nl = String.length needle and jl = String.length j in
    let rec go i = i + nl <= jl && (String.sub j i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "labelled" (has "\"label\":\"unit\"");
  check_true "outcome present" (has "\"outcome\":\"converged\"");
  check_true "min_ratio present" (has "\"min_ratio\":");
  check_true "wall time excluded (deterministic)" (not (has "wall"));
  (* Deterministic: rendering the same verdict twice is byte-identical,
     and a re-run of the same supervised run renders identically too. *)
  Alcotest.(check string) "stable render" j (Supervisor.verdict_to_json ~label:"unit" v);
  let v' = Supervisor.run c ~net ~r0:[| 0.02; 0.02 |] in
  Alcotest.(check string) "re-run renders identically" j
    (Supervisor.verdict_to_json ~label:"unit" v')

let test_misbehaving_and_describe () =
  let plan =
    Fault.plan
      [
        Fault.on [ 1 ] Fault.Dead;
        Fault.on [ 2 ] (Fault.Greedy { ramp = 0.1; cap = 2. });
        Fault.on [ 0 ] (Fault.Stale { lag = 4 });
      ]
  in
  check_true "dead and greedy are misbehaving; stale is not"
    (Fault.misbehaving plan ~n:4 = [| false; true; true; false |]);
  Alcotest.(check int) "three described specs" 3 (List.length (Fault.describe plan));
  check_true "empty plan describes nothing" (Fault.describe Fault.none = [])

let suites =
  [
    ( "faults.plan",
      [
        case "validation" test_plan_validation;
        case "flap validation" test_flap_validation;
        case "misbehaving and describe" test_misbehaving_and_describe;
      ] );
    ( "faults.injector",
      [
        case "empty plan is bit-identical to Controller.step" test_empty_plan_is_exact;
        case "neutral severities are bit-identical" test_neutral_severities_are_exact;
        case "loss p=1 freezes the connection" test_lossy_one_freezes;
        case "dead holds, greedy ramps to cap" test_dead_holds_and_greedy_ramps;
        case "stale reads the lagged signal" test_stale_uses_old_signal;
        case "stochastic faults are seed-deterministic" test_stochastic_faults_deterministic;
        case "gateway cut windows and horizon" test_gateway_cut_windows;
        case "out-of-order step rejected" test_out_of_order_step_rejected;
        case "flap cycles presence deterministically" test_flap_cycles_presence;
      ] );
    ( "faults.supervisor",
      [
        case "unfaulted run matches Controller.run" test_supervisor_unfaulted_matches_run;
        case "transient cut recovers to full capacity" test_transient_cut_recovers;
        case "+inf adjuster degrades to Diverged" test_infinite_adjuster_is_divergence;
        case "damping retries recover a diverging run" test_supervisor_recovers_divergence;
        case "wall budget bounds retries" test_supervisor_wall_budget;
        case "run_map min_steps defers the verdict" test_run_map_min_steps;
        case "verdict_to_json is deterministic" test_verdict_to_json;
      ] );
    ( "faults.e25",
      [
        case "acceptance: Theorem 5 under stress" test_e25_acceptance;
        case "jobs-invariant matrix" test_e25_jobs_invariant;
      ] );
  ]
