(* The online gateway service: protocol, admission, degradation ladder,
   snapshots, churn — and the determinism contract that ties them
   together (byte-identical decision logs at any --jobs and across
   snapshot restarts). *)

open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_faults
open Ffc_service
open Test_util

let additive = Rate_adjust.additive ~eta:0.1 ~beta:0.5

let make_engine ?(config = Admission.default_config) ?failure_hook ?slow_hook
    ?(adjuster = additive) ?(n = 3) () =
  let net = Topologies.single ~mu:1. ~n () in
  let controller =
    Controller.homogeneous ~config:Feedback.individual_fair_share ~adjuster ~n
  in
  (Admission.create ~config ?failure_hook ?slow_hook controller ~net, net)

let scrape_str line key =
  match Protocol.json_string_field line ~key with
  | Some v -> v
  | None -> Alcotest.failf "no %S in %s" key line

let scrape_num line key =
  match Protocol.json_number_field line ~key with
  | Some v -> v
  | None -> Alcotest.failf "no %S in %s" key line

let handle_line engine s =
  match Protocol.parse s with
  | Ok req -> (Admission.handle engine req).Admission.line
  | Error e -> Alcotest.failf "bad request %S: %s" s e

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Add { conn = None; time = None; size = None };
      Protocol.Add { conn = Some "conn7"; time = Some 1.25; size = Some 0.125 };
      Protocol.Add { conn = None; time = Some 3.5e-3; size = None };
      Protocol.Remove { conn = "c"; time = Some 2. };
      Protocol.Remove { conn = "c"; time = None };
      Protocol.Query { time = Some 9. };
      Protocol.Query { time = None };
      Protocol.Stats { time = None };
      Protocol.Stats { time = Some 4.5 };
      Protocol.Metrics { prom = false };
      Protocol.Metrics { prom = true };
      Protocol.Snapshot;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse (Protocol.render r) with
      | Ok r' -> check_true (Protocol.render r) (r = r')
      | Error e -> Alcotest.failf "%s: %s" (Protocol.render r) e)
    reqs;
  let rejects line =
    match Protocol.parse line with Ok _ -> false | Error _ -> true
  in
  check_true "unknown verb" (rejects "frobnicate");
  check_true "empty" (rejects "");
  check_true "bad number" (rejects "add t=abc");
  check_true "unknown field" (rejects "add bw=3");
  check_true "duplicate field" (rejects "add t=1 t=2");
  check_true "remove needs a name" (rejects "remove t=1");
  check_true "stats takes nothing" (rejects "stats now");
  check_true "non-finite time" (rejects "query t=nan")

(* The positional-name fallback: [add] may lead with a bare connection
   name, and an error in the key=value tail must be reported as the
   tail's error — not as the name failing to parse as a field. *)
let test_protocol_positional_edge_cases () =
  let ok s =
    match Protocol.parse s with
    | Ok r -> r
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  let err s =
    match Protocol.parse s with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" s
    | Error e -> e
  in
  (match ok "add conn1 t=1 size=2" with
  | Protocol.Add { conn = Some "conn1"; time = Some 1.; size = Some 2. } -> ()
  | _ -> Alcotest.fail "positional name with fields");
  (match ok "add t=1" with
  | Protocol.Add { conn = None; time = Some 1.; size = None } -> ()
  | _ -> Alcotest.fail "name absent");
  (* The tail's error is the error — the name is never blamed. *)
  let e = err "add conn1 bogus" in
  check_true "tail error names the bad word" (contains e "bogus");
  check_true "the name is not blamed" (not (contains e "conn1"));
  check_true "duplicate after a name" (contains (err "add conn1 t=1 t=2") "duplicate");
  check_true "unknown after a name" (contains (err "add conn1 bw=3") "unknown");
  check_true "bad number after a name"
    (contains (err "add conn1 t=abc") "bad number");
  (* Batch brackets are bare verbs. *)
  (match ok "batch" with
  | Protocol.Batch_begin -> ()
  | _ -> Alcotest.fail "batch parses");
  (match ok "end" with
  | Protocol.Batch_end -> ()
  | _ -> Alcotest.fail "end parses");
  check_true "batch takes nothing" (contains (err "batch now") "no arguments");
  check_true "end takes nothing" (contains (err "end now") "no arguments")

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let test_admission_matches_fair_masked () =
  let engine, net = make_engine ~n:3 () in
  let r1 = handle_line engine "add t=0.1" in
  Alcotest.(check string) "admitted" "admit" (scrape_str r1 "decision");
  let r2 = handle_line engine "add t=0.2" in
  let r3 = handle_line engine "add t=0.3" in
  Alcotest.(check string) "admitted" "admit" (scrape_str r2 "decision");
  Alcotest.(check string) "admitted" "admit" (scrape_str r3 "decision");
  Alcotest.(check int) "all three active" 3 (Admission.active_count engine);
  (* The committed rates are bit-for-bit the masked fair steady state. *)
  let expected =
    Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      ~active:[| true; true; true |]
  in
  check_true "rates exactly fair_masked" (Admission.rates engine = expected);
  check_true "admit keeps the Theorem-5 floor"
    (scrape_num r3 "min_ratio" >= 1. -. 1e-6);
  check_true "stable" (scrape_num r3 "rho" < 1.);
  (* A full universe rejects the next arrival without state change. *)
  let r4 = handle_line engine "add t=0.4" in
  check_true "no slot is an error" (contains r4 "no idle slot");
  Alcotest.(check int) "population unchanged" 3 (Admission.active_count engine);
  (* Departure frees the slot and the population resolves again. *)
  let r5 = handle_line engine "remove conn1 t=0.5" in
  Alcotest.(check string) "removed" "ok" (scrape_str r5 "decision");
  let expected' =
    Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      ~active:[| true; false; true |]
  in
  check_true "rates re-resolved exactly" (Admission.rates engine = expected');
  let r6 = handle_line engine "remove conn1 t=0.6" in
  check_true "double remove is an error" (contains r6 "not active")

let test_admission_min_rate_reject () =
  let config = { Admission.default_config with min_rate = 0.3 } in
  let engine, _ = make_engine ~config ~n:3 () in
  let r1 = handle_line engine "add t=0" in
  Alcotest.(check string) "first flow fits" "admit" (scrape_str r1 "decision");
  (* A second flow would halve both rates to 0.25 < 0.3: discard at
     ingress, population untouched. *)
  let r2 = handle_line engine "add t=0" in
  Alcotest.(check string) "rejected" "reject" (scrape_str r2 "decision");
  Alcotest.(check string) "because of min_rate" "min_rate" (scrape_str r2 "reason");
  Alcotest.(check int) "still one active" 1 (Admission.active_count engine)

let test_snapshot_shutdown_are_server_level () =
  let engine, _ = make_engine () in
  let refused =
    Invalid_argument
      "Admission.handle: metrics/snapshot/shutdown are server-level requests"
  in
  Alcotest.check_raises "snapshot refused" refused (fun () ->
      ignore (Admission.handle engine Protocol.Snapshot));
  Alcotest.check_raises "metrics refused" refused (fun () ->
      ignore (Admission.handle engine (Protocol.Metrics { prom = false })))

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let ladder_config =
  {
    Admission.default_config with
    backlog_incremental = 0.25;
    backlog_cached = 0.5;
    backlog_shed = 0.75;
    cost_full = 0.3;
    cost_incremental = 0.2;
    cost_cached = 0.15;
  }

let test_ladder_degrades_and_recovers () =
  let engine, net = make_engine ~config:ladder_config ~n:8 () in
  (* A burst all stamped t=0: each service charge raises the backlog the
     next request sees, so the tiers step down deterministically. *)
  let tiers =
    List.map
      (fun _ -> scrape_str (handle_line engine "add t=0") "tier")
      [ (); (); (); (); () ]
  in
  Alcotest.(check (list string))
    "full > incremental > cached > cached > shed"
    [ "full"; "incremental"; "cached"; "cached"; "shed" ]
    tiers;
  (* The shed add was rejected at ingress: only 4 flows entered. *)
  Alcotest.(check int) "shed not admitted" 4 (Admission.active_count engine);
  (* Degraded tiers still commit exact rates: bit-for-bit the masked
     fair steady state of the population they admitted. *)
  let expected =
    Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      ~active:(Array.init 8 (fun i -> i < 4))
  in
  check_true "cached-tier rates still exact" (Admission.rates engine = expected);
  (* Once the logical clock drains, service steps back up to full. *)
  let late = handle_line engine "add t=100" in
  Alcotest.(check string) "recovered to full" "full" (scrape_str late "tier");
  Alcotest.(check string) "admitted" "admit" (scrape_str late "decision");
  let stats = handle_line engine "stats" in
  check_true "degrades counted" (scrape_num stats "degrades" >= 2.);
  check_true "recovery counted" (scrape_num stats "recovers" >= 1.);
  check_true "shed counted" (scrape_num stats "sheds" >= 1.)

let test_cached_tier_flags_stale_rho () =
  let engine, _ = make_engine ~config:ladder_config ~n:8 () in
  ignore (handle_line engine "add t=0");
  ignore (handle_line engine "add t=0");
  let cached = handle_line engine "add t=0" in
  Alcotest.(check string) "third lands on cached" "cached" (scrape_str cached "tier");
  Alcotest.(check (option bool))
    "stale rho flagged" (Some false)
    (Protocol.json_bool_field cached ~key:"rho_fresh");
  let fresh = handle_line engine "add t=100" in
  Alcotest.(check (option bool))
    "full tier is fresh again" (Some true)
    (Protocol.json_bool_field fresh ~key:"rho_fresh")

let test_read_only_verbs_stale_under_load () =
  let engine, _ = make_engine ~config:ladder_config ~n:8 () in
  (* Same burst as the degrade test: five adds at t=0 leave the backlog
     past the shed threshold. *)
  List.iter (fun _ -> ignore (handle_line engine "add t=0")) [ (); (); (); (); () ];
  (* Shed band: the query is still answered — from the last committed
     state, at shed cost, with the verdict withheld and stale flagged. *)
  let shed = handle_line engine "query t=0" in
  check_true "query succeeds under shed" (contains shed "\"ok\":true");
  Alcotest.(check string) "tier shed" "shed" (scrape_str shed "tier");
  check_true "stale flagged" (contains shed "\"stale\":true");
  check_true "verdict withheld" (contains shed "\"verdict\":null");
  check_float ~tol:0. "state still served" 4. (scrape_num shed "active");
  (* Cached band (backlog decayed below shed): still stale, still no
     verdict, but served as cached. *)
  let cached = handle_line engine "query t=0.2" in
  Alcotest.(check string) "tier cached" "cached" (scrape_str cached "tier");
  check_true "cached band is stale too" (contains cached "\"stale\":true");
  check_true "verdict still withheld" (contains cached "\"verdict\":null");
  (* Drained: fresh replies drop the flag and run the verdict. *)
  let fresh = handle_line engine "query t=100" in
  check_false "fresh reply is not stale" (contains fresh "\"stale\"");
  check_false "verdict restored" (contains fresh "\"verdict\":null");
  check_true "verdict present" (contains fresh "\"verdict\":{")

let test_stats_free_and_never_shed () =
  let engine, _ = make_engine ~config:ladder_config ~n:8 () in
  List.iter (fun _ -> ignore (handle_line engine "add t=0")) [ (); (); (); (); () ];
  let s1 = handle_line engine "stats t=0" in
  check_true "stats succeeds under shed" (contains s1 "\"ok\":true");
  Alcotest.(check string) "tagged shed" "shed" (scrape_str s1 "tier");
  check_true "tagged stale" (contains s1 "\"stale\":true");
  check_true "backlog reported" (scrape_num s1 "backlog" > 0.);
  (* A stats probe is free: a second probe at the same time sees the
     identical vclock and backlog (only the seq advanced). *)
  let s2 = handle_line engine "stats t=0" in
  check_float ~tol:0. "no vclock charge" (scrape_num s1 "vclock")
    (scrape_num s2 "vclock");
  check_float ~tol:0. "backlog unchanged" (scrape_num s1 "backlog")
    (scrape_num s2 "backlog");
  check_float ~tol:0. "seq still advances"
    (scrape_num s1 "seq" +. 1.)
    (scrape_num s2 "seq");
  (* served_* counters only count decision events, so the probes did
     not inflate them. *)
  check_float ~tol:0. "stats probes are not decisions" 4.
    (scrape_num s2 "served_full" +. scrape_num s2 "served_incremental"
    +. scrape_num s2 "served_cached")

(* ------------------------------------------------------------------ *)
(* Robustness envelope: retries, backoff, solver failure               *)
(* ------------------------------------------------------------------ *)

let test_backoff_retry_deterministic () =
  (* First attempt of every even-seq solve fails transiently: the retry
     must succeed, the reply must record 2 attempts, and two engines
     with the same hook must produce byte-identical logs. *)
  let hook ~seq ~attempt = attempt = 0 && seq mod 2 = 0 in
  let script = [ "add t=0.1"; "add t=0.2"; "query t=0.3"; "remove conn0 t=0.4" ] in
  let run () =
    let engine, _ = make_engine ~failure_hook:hook ~n:4 () in
    let lines = List.map (handle_line engine) script in
    (lines, handle_line engine "stats")
  in
  let lines_a, stats_a = run () in
  let lines_b, stats_b = run () in
  Alcotest.(check (list string)) "byte-identical decision log" lines_a lines_b;
  Alcotest.(check string) "byte-identical counters" stats_a stats_b;
  check_true "backoffs happened" (scrape_num stats_a "backoffs" >= 1.);
  let retried = List.nth lines_a 1 in
  Alcotest.(check string) "seq 2 retried" "2" (Printf.sprintf "%g" (scrape_num retried "attempts"));
  Alcotest.(check string) "still admitted" "admit" (scrape_str retried "decision")

let test_solver_failure_degrades_then_rejects () =
  (* Every solve attempt for seq 2 fails: the add must walk the whole
     ladder, give up, and reject without corrupting state. *)
  let hook ~seq ~attempt:_ = seq = 2 in
  let engine, _ = make_engine ~failure_hook:hook ~n:4 () in
  let r1 = handle_line engine "add t=0.1" in
  Alcotest.(check string) "first add fine" "admit" (scrape_str r1 "decision");
  let r2 = handle_line engine "add t=0.2" in
  Alcotest.(check string) "rejected" "reject" (scrape_str r2 "decision");
  Alcotest.(check string) "reason: solver" "solver_failure" (scrape_str r2 "reason");
  Alcotest.(check int) "population intact" 1 (Admission.active_count engine);
  (* The next request works again. *)
  let r3 = handle_line engine "add t=0.3" in
  Alcotest.(check string) "back to normal" "admit" (scrape_str r3 "decision")

let test_timeout_keeps_late_result () =
  (* Regression: a solve that finishes after the per-solve deadline used
     to be discarded and retried, so enabling [timeout] changed the
     decision log.  Now the late result is kept — the overrun is only
     counted in the ambient metrics registry. *)
  let slow ~seq ~attempt:_ = if seq = 2 then 0.02 else 0. in
  let config = { Admission.default_config with timeout = 0.002 } in
  let script = [ "add t=0.1"; "add t=0.2"; "add t=0.3"; "stats" ] in
  let run engine = List.map (handle_line engine) script in
  let metrics = Ffc_obs.Metrics.create () in
  let slow_engine, _ = make_engine ~config ~slow_hook:slow ~n:4 () in
  let slow_log =
    Ffc_obs.Ctx.with_ctx (Ffc_obs.Ctx.make ~metrics ()) (fun () ->
        run slow_engine)
  in
  let fast_engine, _ = make_engine ~config ~n:4 () in
  let fast_log = run fast_engine in
  Alcotest.(check (list string))
    "overrunning the deadline does not change the decision log" slow_log
    fast_log;
  let late = List.nth slow_log 1 in
  Alcotest.(check string) "late result kept" "admit" (scrape_str late "decision");
  check_float ~tol:0. "no retry was spent" 1. (scrape_num late "attempts");
  (* The overrun was counted — outside the deterministic reply stream. *)
  let timeouts =
    Ffc_obs.Metrics.Counter.value
      (Ffc_obs.Metrics.counter metrics "service.timeouts")
  in
  Alcotest.(check int) "overrun counted once" 1 timeouts;
  (* The stats reply no longer reports a timeouts counter at all. *)
  check_true "timeouts are off the deterministic path"
    (not (contains (List.nth slow_log 3) "timeouts"))

(* ------------------------------------------------------------------ *)
(* Determinism across --jobs                                           *)
(* ------------------------------------------------------------------ *)

let determinism_script =
  [
    "# comment lines are silent";
    "add t=0.05 size=2";
    "add t=0.1 size=1";
    "add t=0.18";
    "query t=0.2";
    "remove conn1 t=0.3";
    "add t=0.32 size=0.5";
    "add t=0.4";
    "stats";
    "query t=0.5";
    "remove conn0 t=0.6";
    "add t=0.61";
    "stats";
  ]

let run_script_fresh () =
  let engine, _ = make_engine ~n:4 () in
  let server = Server.create engine in
  Server.run_script server determinism_script

let test_jobs_invariant_decision_log () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 1;
      let narrow = run_script_fresh () in
      Pool.set_default_jobs 4;
      let wide = run_script_fresh () in
      Alcotest.(check (list string))
        "decision log byte-identical at jobs 1 vs 4" narrow wide)

(* ------------------------------------------------------------------ *)
(* Snapshot / restart                                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_state_roundtrip () =
  let path = Filename.temp_file "ffc_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let engine, _ = make_engine ~n:4 () in
      ignore (handle_line engine "add t=0.1");
      ignore (handle_line engine "add t=0.2");
      ignore (handle_line engine "remove conn0 t=0.3");
      let state = Admission.state engine in
      let bytes = Snapshot.write ~path state in
      Alcotest.(check int) "write returns the size" bytes
        (String.length (Snapshot.render state));
      match Snapshot.load ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
        check_true "round-trip is exact" (loaded = state);
        Alcotest.(check string)
          "re-render is byte-identical"
          (Snapshot.render state) (Snapshot.render loaded))

let test_snapshot_corruption_detected () =
  let path = Filename.temp_file "ffc_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let engine, _ = make_engine ~n:2 () in
      ignore (handle_line engine "add t=0.1");
      let text = Snapshot.render (Admission.state engine) in
      let write s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s) in
      let fails s =
        write s;
        match Snapshot.load ~path with Ok _ -> false | Error _ -> true
      in
      check_true "bad magic" (fails ("junk\n" ^ text));
      check_true "truncated (no end marker)"
        (fails (String.sub text 0 (String.length text - 5)));
      check_true "garbage" (fails "not a snapshot at all\n");
      (* A snapshot from a differently-configured engine is refused. *)
      write text;
      let other_config = { Admission.default_config with b_ss = 0.25 } in
      let other, _ = make_engine ~config:other_config ~n:2 () in
      (match Snapshot.load ~path with
      | Error e -> Alcotest.fail e
      | Ok s -> (
        match Admission.restore other s with
        | Ok () -> Alcotest.fail "digest mismatch must be refused"
        | Error e -> check_true "mentions the digest" (contains e "digest"))))

let test_restart_resumes_bit_identically () =
  let path = Filename.temp_file "ffc_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let prefix =
        [ "add t=0.05 size=2"; "add t=0.1"; "add t=0.15"; "remove conn1 t=0.2" ]
      in
      let suffix =
        [ "add t=0.25"; "query t=0.3"; "remove conn0 t=0.35"; "add t=0.4"; "stats" ]
      in
      let engine_a, _ = make_engine ~n:4 () in
      let server_a = Server.create ~snapshot_path:path engine_a in
      ignore (Server.run_script server_a prefix);
      ignore (Server.run_script server_a [ "snapshot" ]);
      let pre_kill = Snapshot.render (Admission.state engine_a) in
      (* "Crash": a brand-new engine recovers from the file the first
         incarnation left behind. *)
      let engine_b, _ = make_engine ~n:4 () in
      let server_b = Server.create ~snapshot_path:path engine_b in
      (match Server.recover server_b with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "snapshot not found"
      | Error e -> Alcotest.fail e);
      (* Recovered state is bit-identical to the pre-kill snapshot... *)
      Alcotest.(check string)
        "re-snapshot reproduces the file byte-for-byte" pre_kill
        (Snapshot.render (Admission.state engine_b));
      (* ...and the two incarnations serve the suffix identically. *)
      let replies_a = Server.run_script server_a suffix in
      let replies_b = Server.run_script server_b suffix in
      Alcotest.(check (list string))
        "post-restart decision log byte-identical" replies_a replies_b)

(* ------------------------------------------------------------------ *)
(* Server dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let test_server_dispatch () =
  let engine, _ = make_engine ~n:2 () in
  let server = Server.create engine in
  (match Server.handle_line server "   " with
  | `Silent -> ()
  | _ -> Alcotest.fail "blank lines are silent");
  (match Server.handle_line server "# hello" with
  | `Silent -> ()
  | _ -> Alcotest.fail "comments are silent");
  (* Parse errors still consume a sequence number, keeping replayed
     logs aligned. *)
  (match Server.handle_line server "bogus" with
  | `Reply r ->
    check_true "error reply" (contains r "\"ok\":false");
    check_float ~tol:0. "seq consumed" 1. (scrape_num r "seq")
  | _ -> Alcotest.fail "parse errors reply");
  (match Server.handle_line server "snapshot" with
  | `Reply r -> check_true "snapshot off" (contains r "snapshotting is off")
  | _ -> Alcotest.fail "snapshot without path is an error reply");
  let replies =
    Server.run_script server [ "add t=1"; "shutdown"; "add t=2"; "stats" ]
  in
  Alcotest.(check int) "script stops at shutdown" 2 (List.length replies);
  check_true "shutdown acknowledged"
    (contains (List.nth replies 1) "\"op\":\"shutdown\"")

let test_metrics_verb () =
  let engine, _ = make_engine ~n:2 () in
  let server = Server.create engine in
  (* A bare daemon with no ambient registry refuses cleanly. *)
  (match Server.handle_line server "metrics" with
  | `Reply r ->
    check_true "refused without a registry" (contains r "\"ok\":false");
    check_true "says why" (contains r "no metrics registry")
  | _ -> Alcotest.fail "metrics must reply");
  let ctx = Ffc_obs.Ctx.make ~metrics:(Ffc_obs.Metrics.create ()) () in
  Ffc_obs.Ctx.with_ctx ctx (fun () ->
      ignore (Server.run_script server [ "add t=1"; "query t=2" ]);
      (match Server.handle_line server "metrics" with
      | `Reply r ->
        check_true "ok" (contains r "\"ok\":true");
        Alcotest.(check string) "json format" "json" (scrape_str r "format");
        check_true "latency histogram exposed"
          (contains r "service.latency.full");
        check_true "jain gauge exposed" (contains r "service.jain_fairness")
      | _ -> Alcotest.fail "metrics must reply");
      match Server.handle_line server "metrics prom" with
      | `Reply r ->
        Alcotest.(check string) "prometheus format" "prometheus"
          (scrape_str r "format");
        check_true "prometheus names"
          (contains r "ffc_service_latency_full_bucket")
      | _ -> Alcotest.fail "metrics prom must reply")

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)
(* ------------------------------------------------------------------ *)

let test_size_dist_parse () =
  List.iter
    (fun spec ->
      match Churn.parse_size_dist spec with
      | Ok d -> Alcotest.(check string) spec spec (Churn.describe_size_dist d)
      | Error e -> Alcotest.failf "%s: %s" spec e)
    [ "const:2"; "exp:1.5"; "uniform:0.5:2"; "pareto:1.5:0.25" ];
  let rejects s =
    match Churn.parse_size_dist s with Ok _ -> false | Error _ -> true
  in
  check_true "negative mean" (rejects "exp:-1");
  check_true "inverted bounds" (rejects "uniform:2:1");
  check_true "unknown" (rejects "zipf:2")

let storm_config =
  {
    Admission.default_config with
    backlog_incremental = 0.05;
    backlog_cached = 0.1;
    backlog_shed = 0.2;
    (* Every tier's logical cost exceeds the mean interarrival (1/40),
       so sustained arrivals must walk the whole ladder down to shed. *)
    cost_full = 0.08;
    cost_incremental = 0.05;
    cost_cached = 0.03;
    plan = Fault.plan [ Fault.everywhere (Fault.Flap { period = 6; up = 4 }) ];
  }

let run_storm () =
  let engine, _ = make_engine ~config:storm_config ~n:12 () in
  let server = Server.create engine in
  let log = Buffer.create 4096 in
  let send line =
    match Server.handle_line server line with
    | `Reply r | `Quit r ->
      Buffer.add_string log (r ^ "\n");
      r
    | `Silent -> ""
  in
  let stats =
    Churn.run ~query_every:16 ~seed:11 ~rate:40. ~arrivals:120
      ~size_dist:(Churn.Exp 0.5) ~send ()
  in
  (stats, engine, send, Buffer.contents log)

let test_churn_storm_acceptance () =
  let stats, engine, send, log = run_storm () in
  Alcotest.(check int) "all arrivals sent" 120 stats.Churn.arrivals;
  check_true "some flows admitted" (stats.Churn.admits > 10);
  check_true "overload shed or errored"
    (stats.Churn.sheds + stats.Churn.errors > 0);
  (* Every admitted flow satisfied the Theorem-5 min-ratio floor. *)
  (match stats.Churn.min_min_ratio with
  | None -> Alcotest.fail "no admissions recorded a min-ratio"
  | Some r -> check_true "min-ratio floor held under storm" (r >= 1. -. 1e-6));
  (* Every admitted document eventually departed: the churn driver
     flushed its pending removals, so the universe drains to empty. *)
  Alcotest.(check int) "population drains" 0 (Admission.active_count engine);
  (* The overload really exercised the ladder. *)
  let stats_line = send "stats" in
  check_true "ladder degraded under storm" (scrape_num stats_line "degrades" >= 1.);
  check_true "ladder recovered as backlog drained"
    (scrape_num stats_line "recovers" >= 1.);
  (* Degraded answers are flagged with their tier. *)
  check_true "cached-tier answers flagged" (contains log "\"tier\":\"cached\"");
  (* A calm-time query gets a full supervised verdict (the flap plan
     remaps onto the active sub-population). *)
  ignore (send "add t=1000" : string);
  ignore (send "add t=1000.1" : string);
  let q = send "query t=1001" in
  check_true "supervised verdict present" (contains q "\"outcome\":");
  check_true "verdict carries baselines" (contains q "\"baselines\":")

let test_churn_storm_deterministic () =
  let _, _, _, log_a = run_storm () in
  let _, _, _, log_b = run_storm () in
  Alcotest.(check string) "storm decision log byte-identical" log_a log_b

(* ------------------------------------------------------------------ *)
(* Batched admission                                                   *)
(* ------------------------------------------------------------------ *)

let add_at t = { Protocol.conn = None; time = Some t; size = None }

(* The verdict-bearing fields of an add reply — everything the batch
   contract promises bit-matches serial execution.  (Seqs, tiers and
   the vclock legitimately differ: the batch summary consumes a seq of
   its own, and batch members are labelled with the batch's tier.) *)
let verdict line =
  let s k = Option.value ~default:"-" (Protocol.json_string_field line ~key:k) in
  let n k =
    match Protocol.json_number_field line ~key:k with
    | None -> "-"
    | Some v -> Ffc_obs.Jsonf.float_rt v
  in
  String.concat " " [ s "conn"; s "decision"; s "reason"; n "rate"; n "min_ratio" ]

(* Run the same k adds serially through one engine and as a single
   bracket through an identically-configured second engine; return
   (serial replies, batch member replies, batch summary, both engines). *)
let batch_vs_serial ?config ?adjuster ~n k =
  let adds = List.init k (fun i -> add_at (0.25 *. float_of_int (i + 1))) in
  let serial_engine, _ = make_engine ?config ?adjuster ~n () in
  let serial =
    List.map
      (fun a -> (Admission.handle serial_engine (Protocol.Add a)).Admission.line)
      adds
  in
  let batch_engine, _ = make_engine ?config ?adjuster ~n () in
  let lines =
    List.map
      (fun r -> r.Admission.line)
      (Admission.handle_batch batch_engine adds)
  in
  Alcotest.(check int) "k members + summary" (k + 1) (List.length lines);
  let members = List.filteri (fun i _ -> i < k) lines in
  (serial, members, List.nth lines k, serial_engine, batch_engine)

let check_batch_matches_serial ?config ?adjuster ~n k =
  let serial, members, summary, serial_engine, batch_engine =
    batch_vs_serial ?config ?adjuster ~n k
  in
  Alcotest.(check (list string))
    "per-member verdicts bit-match serial" (List.map verdict serial)
    (List.map verdict members);
  (* The committed state is the same state serial execution reaches. *)
  check_true "rates bit-identical"
    (Admission.rates serial_engine = Admission.rates batch_engine);
  Alcotest.(check int) "same population"
    (Admission.active_count serial_engine)
    (Admission.active_count batch_engine);
  check_true "same rho"
    (Admission.rho serial_engine = Admission.rho batch_engine);
  List.iter
    (fun m ->
      check_float ~tol:0. "members carry the bracket size" (float_of_int k)
        (scrape_num m "batch"))
    members;
  summary

let test_batch_admit_matches_serial () =
  let summary = check_batch_matches_serial ~n:6 4 in
  Alcotest.(check string) "summary op" "batch" (scrape_str summary "op");
  check_float ~tol:0. "summary adds" 4. (scrape_num summary "adds");
  check_float ~tol:0. "summary admits" 4. (scrape_num summary "admits");
  check_float ~tol:0. "summary rejects" 0. (scrape_num summary "rejects");
  Alcotest.(check string) "one full-tier solve" "full" (scrape_str summary "tier")

let test_batch_min_rate_matches_serial () =
  (* Four flows share a unit link (fair rates 0.5, 0.25, 1/6, 0.125):
     the fourth's rate falls below the floor, so serial execution
     admits three and rejects the fourth — the batch must reproduce
     exactly that. *)
  let config = { Admission.default_config with min_rate = 0.15 } in
  let summary = check_batch_matches_serial ~config ~n:6 4 in
  check_float ~tol:0. "three admitted" 3. (scrape_num summary "admits");
  check_float ~tol:0. "one rejected" 1. (scrape_num summary "rejects")

let test_batch_rho_crossing_matches_serial () =
  (* An aggressive adjuster destabilises the system as the population
     grows: serially the third add lands at rho = 1 and is rejected.
     The batch's single rho check sees the crossing and replays the
     candidates serially, reproducing the greedy serial verdicts —
     including which member crosses the line. *)
  let adjuster = Rate_adjust.additive ~eta:0.5 ~beta:0.5 in
  let serial, members, summary, serial_engine, batch_engine =
    batch_vs_serial ~adjuster ~n:6 4
  in
  Alcotest.(check (list string))
    "verdicts bit-match across the rho crossing" (List.map verdict serial)
    (List.map verdict members);
  Alcotest.(check string) "third member rejected on rho" "rho"
    (scrape_str (List.nth members 2) "reason");
  check_float ~tol:0. "two admitted" 2. (scrape_num summary "admits");
  check_true "rates bit-identical"
    (Admission.rates serial_engine = Admission.rates batch_engine);
  Alcotest.(check int) "two active in both" 2
    (Admission.active_count batch_engine)

let lines_of s = List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let test_batch_single_span_single_rho_check () =
  (* The observable witness that a bracket of k adds does one solve:
     exactly one svc.batch span, no per-member svc.request spans, and
     one decision event per member. *)
  let sink = Ffc_obs.Sink.buffer () in
  let ctx = Ffc_obs.Ctx.make ~sink () in
  let engine, _ = make_engine ~n:6 () in
  let _, trace =
    Ffc_obs.Ctx.with_ctx ctx (fun () ->
        Ffc_obs.Sink.capture (fun () ->
            Admission.handle_batch engine
              (List.init 4 (fun i -> add_at (0.25 *. float_of_int (i + 1))))))
  in
  let acc = Ffc_obs.Trace_report.of_lines (lines_of trace) in
  let phase_count name =
    match
      List.find_opt
        (fun p -> p.Ffc_obs.Trace_report.ph_name = name)
        (Ffc_obs.Trace_report.phases acc)
    with
    | Some p -> p.Ffc_obs.Trace_report.ph_count
    | None -> 0
  in
  Alcotest.(check int) "one svc.batch span" 1 (phase_count "svc.batch");
  Alcotest.(check int) "no per-member request spans" 0 (phase_count "svc.request");
  let tiers = Ffc_obs.Trace_report.tiers acc in
  Alcotest.(check int) "one decision event per member" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 tiers)

let test_server_batch_brackets () =
  let engine, _ = make_engine ~n:6 () in
  let server = Server.create engine in
  let s = Server.new_session () in
  let silent line =
    match Server.handle_session_line server s line with
    | `Silent -> ()
    | _ -> Alcotest.failf "%s: expected silence" line
  in
  let errors line needle =
    match Server.handle_session_line server s line with
    | `Replies [ r ] ->
      check_true (line ^ ": ok:false") (contains r "\"ok\":false");
      check_true (Printf.sprintf "%s: says %S" line needle) (contains r needle)
    | _ -> Alcotest.failf "%s: expected one error reply" line
  in
  errors "end" "without an open batch bracket";
  silent "batch";
  silent "add t=0.25";
  (* Only adds may ride a bracket; the bracket survives the error. *)
  errors "query t=0.3" "only add";
  errors "batch" "already open";
  silent "add t=0.5";
  (match Server.handle_session_line server s "end" with
  | `Replies rs ->
    Alcotest.(check int) "two members + summary" 3 (List.length rs);
    List.iteri
      (fun i r ->
        if i < 2 then
          check_float ~tol:0. "bracket size" 2. (scrape_num r "batch"))
      rs;
    Alcotest.(check string) "summary closes the bracket" "batch"
      (scrape_str (List.nth rs 2) "op")
  | _ -> Alcotest.fail "end flushes the bracket");
  Alcotest.(check int) "both adds committed" 2 (Admission.active_count engine);
  (* An empty bracket is legal: just the summary, nothing solved. *)
  silent "batch";
  (match Server.handle_session_line server s "end" with
  | `Replies [ r ] ->
    check_float ~tol:0. "no adds" 0. (scrape_num r "adds");
    check_float ~tol:0. "no admits" 0. (scrape_num r "admits")
  | _ -> Alcotest.fail "empty bracket still answers")

let test_bracket_dies_with_session () =
  let engine, _ = make_engine ~n:4 () in
  let server = Server.create engine in
  let s = Server.new_session () in
  (match Server.handle_session_line server s "batch" with
  | `Silent -> ()
  | _ -> Alcotest.fail "bracket opens silently");
  (match Server.handle_session_line server s "add t=0.25" with
  | `Silent -> ()
  | _ -> Alcotest.fail "buffered add is silent");
  (* The session is dropped with the bracket open: nothing may have
     reached the engine — no commit, no sequence number. *)
  Alcotest.(check int) "nothing committed" 0 (Admission.active_count engine);
  Alcotest.(check int) "no seq consumed" 0 (Admission.seq engine)

(* ------------------------------------------------------------------ *)
(* Interleaving invariance                                             *)
(* ------------------------------------------------------------------ *)

let test_interleaving_invariant_decision_log () =
  (* The same global request order distributed over different sessions
     must produce the identical decision log: the engine is serial
     behind its logical clock, sessions are only transport. *)
  let run pick =
    let engine, _ = make_engine ~n:4 () in
    let server = Server.create engine in
    let sessions =
      [| Server.new_session ~sid:1 (); Server.new_session ~sid:2 () |]
    in
    List.concat
      (List.mapi
         (fun i line ->
           match Server.handle_session_line server sessions.(pick i) line with
           | `Silent -> []
           | `Replies rs | `Quit rs -> rs)
         determinism_script)
  in
  let single = run (fun _ -> 0) in
  let alternating = run (fun i -> i mod 2) in
  let split = run (fun i -> if i < 6 then 0 else 1) in
  Alcotest.(check (list string))
    "alternating sessions: byte-identical" single alternating;
  Alcotest.(check (list string)) "split sessions: byte-identical" single split

(* ------------------------------------------------------------------ *)
(* The select event loop over a real socket                            *)
(* ------------------------------------------------------------------ *)

let test_classify_accept_error () =
  let show e =
    match Server.classify_accept_error e with
    | `Retry -> "retry"
    | `Ignore -> "ignore"
    | `Backoff -> "backoff"
    | `Fatal -> "fatal"
  in
  Alcotest.(check string) "EINTR retries" "retry" (show Unix.EINTR);
  Alcotest.(check string) "ECONNABORTED ignored" "ignore" (show Unix.ECONNABORTED);
  Alcotest.(check string) "EAGAIN ignored" "ignore" (show Unix.EAGAIN);
  Alcotest.(check string) "EMFILE backs off" "backoff" (show Unix.EMFILE);
  Alcotest.(check string) "ENFILE backs off" "backoff" (show Unix.ENFILE);
  Alcotest.(check string) "ENOBUFS backs off" "backoff" (show Unix.ENOBUFS);
  Alcotest.(check string) "EBADF is fatal" "fatal" (show Unix.EBADF)

let temp_sock () =
  let path = Filename.temp_file "ffc_daemon" ".sock" in
  Sys.remove path;
  path

let connect_to sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      Unix.sleepf 0.02;
      go (n - 1)
  in
  go 250;
  (fd, Unix.in_channel_of_descr fd)

let send_raw (fd, _) line =
  let data = line ^ "\n" in
  let rec go pos =
    if pos < String.length data then
      go (pos + Unix.write_substring fd data pos (String.length data - pos))
  in
  go 0

let read_reply (_, ic) = input_line ic

let request c line =
  send_raw c line;
  read_reply c

let close_client (fd, _) = try Unix.close fd with Unix.Unix_error _ -> ()

(* Run [f] against a live daemon in a sibling domain; always shut the
   daemon down afterwards (retrying while the session table is full)
   so the domain can be joined even when [f] fails. *)
let with_daemon ?max_sessions ?idle_timeout ?(n = 6)
    ?(config = Admission.default_config) f =
  let engine, _ = make_engine ~config ~n () in
  let server = Server.create engine in
  let sock = temp_sock () in
  let daemon =
    Domain.spawn (fun () ->
        try
          Server.serve ?max_sessions ?idle_timeout server ~socket:sock;
          None
        with e -> Some (Printexc.to_string e))
  in
  Fun.protect
    ~finally:(fun () ->
      let rec stop tries =
        match
          let c = connect_to sock in
          let r = request c "shutdown" in
          close_client c;
          r
        with
        | r when contains r "shed at accept" && tries > 0 ->
          Unix.sleepf 0.05;
          stop (tries - 1)
        | _ -> ()
        | exception _ -> ()
      in
      stop 20;
      (match Domain.join daemon with
      | None -> ()
      | Some e -> Alcotest.failf "daemon raised: %s" e);
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f sock engine)

let test_daemon_concurrent_sessions_and_batch () =
  with_daemon (fun sock _ ->
      let a = connect_to sock in
      let b = connect_to sock in
      (* Interleaved requests across two sessions: seqs advance in the
         global arrival order, whatever session carries each request. *)
      let r1 = request a "add t=0.25" in
      Alcotest.(check string) "a admits" "admit" (scrape_str r1 "decision");
      check_float ~tol:0. "seq 1" 1. (scrape_num r1 "seq");
      let r2 = request b "add t=0.5" in
      Alcotest.(check string) "b admits" "admit" (scrape_str r2 "decision");
      check_float ~tol:0. "seq 2" 2. (scrape_num r2 "seq");
      let r3 = request a "query t=0.75" in
      check_float ~tol:0. "seq 3" 3. (scrape_num r3 "seq");
      (* A pipelined bracket rides session b: write everything, then
         collect two member replies plus the summary. *)
      send_raw b "batch";
      send_raw b "add t=1";
      send_raw b "add t=1.25";
      send_raw b "end";
      let m1 = read_reply b in
      let m2 = read_reply b in
      let summary = read_reply b in
      Alcotest.(check string) "member 1 admitted" "admit" (scrape_str m1 "decision");
      Alcotest.(check string) "member 2 admitted" "admit" (scrape_str m2 "decision");
      check_float ~tol:0. "bracket size tagged" 2. (scrape_num m1 "batch");
      Alcotest.(check string) "summary arrives last" "batch"
        (scrape_str summary "op");
      (* Session a was not disturbed by b's bracket. *)
      let r4 = request a "stats" in
      check_float ~tol:0. "four flows active" 4. (scrape_num r4 "active");
      close_client a;
      close_client b)

let test_daemon_slow_reader_does_not_block () =
  with_daemon (fun sock _ ->
      let slow = connect_to sock in
      (* [slow] sends a request but never reads the reply... *)
      send_raw slow "add t=0.25";
      (* ...yet another session gets served promptly (a blocking write
         to [slow] would wedge the whole loop here). *)
      let other = connect_to sock in
      let r = request other "stats" in
      Alcotest.(check string) "other session served" "stats" (scrape_str r "op");
      check_float ~tol:0. "slow session's add was processed" 1.
        (scrape_num r "active");
      (* The unread reply is still waiting when the reader catches up. *)
      let pending = read_reply slow in
      Alcotest.(check string) "pending reply intact" "admit"
        (scrape_str pending "decision");
      close_client slow;
      close_client other)

let test_daemon_accept_shed_at_capacity () =
  with_daemon ~max_sessions:1 (fun sock _ ->
      let a = connect_to sock in
      ignore (request a "add t=0.25" : string);
      (* The table is full: the next connection gets one shed line and
         is closed — without consuming an engine seq. *)
      let b = connect_to sock in
      let shed = read_reply b in
      check_true "shed line" (contains shed "shed at accept");
      (match read_reply b with
      | exception End_of_file -> ()
      | l -> Alcotest.failf "shed connection must close, got %s" l);
      close_client b;
      (* The established session is unaffected, and no seq was burned:
         the next request is seq 2. *)
      let r = request a "stats" in
      check_float ~tol:0. "no seq consumed by the shed" 2. (scrape_num r "seq");
      close_client a)

let test_daemon_idle_timeout_closes () =
  with_daemon ~idle_timeout:0.1 (fun sock _ ->
      let c = connect_to sock in
      ignore (request c "add t=0.25" : string);
      (* Stay silent past the idle deadline: the daemon closes us. *)
      (match read_reply c with
      | exception End_of_file -> ()
      | l -> Alcotest.failf "idle session must be closed, got %s" l);
      close_client c)

let suites =
  [
    ( "service.protocol",
      [
        case "request round-trip and rejects" test_protocol_roundtrip;
        case "positional-name edge cases" test_protocol_positional_edge_cases;
        case "size distribution parse" test_size_dist_parse;
      ] );
    ( "service.admission",
      [
        case "admissions match fair_masked bit-for-bit" test_admission_matches_fair_masked;
        case "min_rate ingress discard" test_admission_min_rate_reject;
        case "snapshot/shutdown are server-level" test_snapshot_shutdown_are_server_level;
      ] );
    ( "service.ladder",
      [
        case "degrades and recovers deterministically" test_ladder_degrades_and_recovers;
        case "cached tier flags stale rho" test_cached_tier_flags_stale_rho;
        case "read-only verbs stale under load"
          test_read_only_verbs_stale_under_load;
        case "stats is free and never shed" test_stats_free_and_never_shed;
      ] );
    ( "service.envelope",
      [
        case "backoff retries are deterministic" test_backoff_retry_deterministic;
        case "solver failure degrades then rejects" test_solver_failure_degrades_then_rejects;
        case "late solve keeps its result under timeout" test_timeout_keeps_late_result;
      ] );
    ( "service.batch",
      [
        case "admit regime bit-matches serial" test_batch_admit_matches_serial;
        case "min_rate regime bit-matches serial" test_batch_min_rate_matches_serial;
        case "rho crossing bit-matches serial" test_batch_rho_crossing_matches_serial;
        case "one svc.batch span, one rho check" test_batch_single_span_single_rho_check;
        case "session bracket state machine" test_server_batch_brackets;
        case "bracket dies with the session" test_bracket_dies_with_session;
      ] );
    ( "service.determinism",
      [
        case "decision log jobs-invariant" test_jobs_invariant_decision_log;
        case "decision log interleaving-invariant" test_interleaving_invariant_decision_log;
        case "churn storm byte-identical" test_churn_storm_deterministic;
      ] );
    ( "service.snapshot",
      [
        case "state round-trip" test_snapshot_state_roundtrip;
        case "corruption and digest mismatch refused" test_snapshot_corruption_detected;
        case "restart resumes bit-identically" test_restart_resumes_bit_identically;
      ] );
    ( "service.server",
      [
        case "dispatch semantics" test_server_dispatch;
        case "metrics verb" test_metrics_verb;
        case "accept-error classification" test_classify_accept_error;
      ] );
    ( "service.daemon",
      [
        case "concurrent sessions and a pipelined batch"
          test_daemon_concurrent_sessions_and_batch;
        case "slow reader does not block the loop"
          test_daemon_slow_reader_does_not_block;
        case "accept-time shedding at capacity"
          test_daemon_accept_shed_at_capacity;
        case "idle timeout closes the session" test_daemon_idle_timeout_closes;
      ] );
    ( "service.churn",
      [ case "storm acceptance" test_churn_storm_acceptance ] );
  ]
