(* The online gateway service: protocol, admission, degradation ladder,
   snapshots, churn — and the determinism contract that ties them
   together (byte-identical decision logs at any --jobs and across
   snapshot restarts). *)

open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_faults
open Ffc_service
open Test_util

let additive = Rate_adjust.additive ~eta:0.1 ~beta:0.5

let make_engine ?(config = Admission.default_config) ?failure_hook ?(n = 3) () =
  let net = Topologies.single ~mu:1. ~n () in
  let controller =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:additive ~n
  in
  (Admission.create ~config ?failure_hook controller ~net, net)

let scrape_str line key =
  match Protocol.json_string_field line ~key with
  | Some v -> v
  | None -> Alcotest.failf "no %S in %s" key line

let scrape_num line key =
  match Protocol.json_number_field line ~key with
  | Some v -> v
  | None -> Alcotest.failf "no %S in %s" key line

let handle_line engine s =
  match Protocol.parse s with
  | Ok req -> (Admission.handle engine req).Admission.line
  | Error e -> Alcotest.failf "bad request %S: %s" s e

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Add { conn = None; time = None; size = None };
      Protocol.Add { conn = Some "conn7"; time = Some 1.25; size = Some 0.125 };
      Protocol.Add { conn = None; time = Some 3.5e-3; size = None };
      Protocol.Remove { conn = "c"; time = Some 2. };
      Protocol.Remove { conn = "c"; time = None };
      Protocol.Query { time = Some 9. };
      Protocol.Query { time = None };
      Protocol.Stats { time = None };
      Protocol.Stats { time = Some 4.5 };
      Protocol.Metrics { prom = false };
      Protocol.Metrics { prom = true };
      Protocol.Snapshot;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse (Protocol.render r) with
      | Ok r' -> check_true (Protocol.render r) (r = r')
      | Error e -> Alcotest.failf "%s: %s" (Protocol.render r) e)
    reqs;
  let rejects line =
    match Protocol.parse line with Ok _ -> false | Error _ -> true
  in
  check_true "unknown verb" (rejects "frobnicate");
  check_true "empty" (rejects "");
  check_true "bad number" (rejects "add t=abc");
  check_true "unknown field" (rejects "add bw=3");
  check_true "duplicate field" (rejects "add t=1 t=2");
  check_true "remove needs a name" (rejects "remove t=1");
  check_true "stats takes nothing" (rejects "stats now");
  check_true "non-finite time" (rejects "query t=nan")

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let test_admission_matches_fair_masked () =
  let engine, net = make_engine ~n:3 () in
  let r1 = handle_line engine "add t=0.1" in
  Alcotest.(check string) "admitted" "admit" (scrape_str r1 "decision");
  let r2 = handle_line engine "add t=0.2" in
  let r3 = handle_line engine "add t=0.3" in
  Alcotest.(check string) "admitted" "admit" (scrape_str r2 "decision");
  Alcotest.(check string) "admitted" "admit" (scrape_str r3 "decision");
  Alcotest.(check int) "all three active" 3 (Admission.active_count engine);
  (* The committed rates are bit-for-bit the masked fair steady state. *)
  let expected =
    Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      ~active:[| true; true; true |]
  in
  check_true "rates exactly fair_masked" (Admission.rates engine = expected);
  check_true "admit keeps the Theorem-5 floor"
    (scrape_num r3 "min_ratio" >= 1. -. 1e-6);
  check_true "stable" (scrape_num r3 "rho" < 1.);
  (* A full universe rejects the next arrival without state change. *)
  let r4 = handle_line engine "add t=0.4" in
  check_true "no slot is an error" (contains r4 "no idle slot");
  Alcotest.(check int) "population unchanged" 3 (Admission.active_count engine);
  (* Departure frees the slot and the population resolves again. *)
  let r5 = handle_line engine "remove conn1 t=0.5" in
  Alcotest.(check string) "removed" "ok" (scrape_str r5 "decision");
  let expected' =
    Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      ~active:[| true; false; true |]
  in
  check_true "rates re-resolved exactly" (Admission.rates engine = expected');
  let r6 = handle_line engine "remove conn1 t=0.6" in
  check_true "double remove is an error" (contains r6 "not active")

let test_admission_min_rate_reject () =
  let config = { Admission.default_config with min_rate = 0.3 } in
  let engine, _ = make_engine ~config ~n:3 () in
  let r1 = handle_line engine "add t=0" in
  Alcotest.(check string) "first flow fits" "admit" (scrape_str r1 "decision");
  (* A second flow would halve both rates to 0.25 < 0.3: discard at
     ingress, population untouched. *)
  let r2 = handle_line engine "add t=0" in
  Alcotest.(check string) "rejected" "reject" (scrape_str r2 "decision");
  Alcotest.(check string) "because of min_rate" "min_rate" (scrape_str r2 "reason");
  Alcotest.(check int) "still one active" 1 (Admission.active_count engine)

let test_snapshot_shutdown_are_server_level () =
  let engine, _ = make_engine () in
  let refused =
    Invalid_argument
      "Admission.handle: metrics/snapshot/shutdown are server-level requests"
  in
  Alcotest.check_raises "snapshot refused" refused (fun () ->
      ignore (Admission.handle engine Protocol.Snapshot));
  Alcotest.check_raises "metrics refused" refused (fun () ->
      ignore (Admission.handle engine (Protocol.Metrics { prom = false })))

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let ladder_config =
  {
    Admission.default_config with
    backlog_incremental = 0.25;
    backlog_cached = 0.5;
    backlog_shed = 0.75;
    cost_full = 0.3;
    cost_incremental = 0.2;
    cost_cached = 0.15;
  }

let test_ladder_degrades_and_recovers () =
  let engine, net = make_engine ~config:ladder_config ~n:8 () in
  (* A burst all stamped t=0: each service charge raises the backlog the
     next request sees, so the tiers step down deterministically. *)
  let tiers =
    List.map
      (fun _ -> scrape_str (handle_line engine "add t=0") "tier")
      [ (); (); (); (); () ]
  in
  Alcotest.(check (list string))
    "full > incremental > cached > cached > shed"
    [ "full"; "incremental"; "cached"; "cached"; "shed" ]
    tiers;
  (* The shed add was rejected at ingress: only 4 flows entered. *)
  Alcotest.(check int) "shed not admitted" 4 (Admission.active_count engine);
  (* Degraded tiers still commit exact rates: bit-for-bit the masked
     fair steady state of the population they admitted. *)
  let expected =
    Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      ~active:(Array.init 8 (fun i -> i < 4))
  in
  check_true "cached-tier rates still exact" (Admission.rates engine = expected);
  (* Once the logical clock drains, service steps back up to full. *)
  let late = handle_line engine "add t=100" in
  Alcotest.(check string) "recovered to full" "full" (scrape_str late "tier");
  Alcotest.(check string) "admitted" "admit" (scrape_str late "decision");
  let stats = handle_line engine "stats" in
  check_true "degrades counted" (scrape_num stats "degrades" >= 2.);
  check_true "recovery counted" (scrape_num stats "recovers" >= 1.);
  check_true "shed counted" (scrape_num stats "sheds" >= 1.)

let test_cached_tier_flags_stale_rho () =
  let engine, _ = make_engine ~config:ladder_config ~n:8 () in
  ignore (handle_line engine "add t=0");
  ignore (handle_line engine "add t=0");
  let cached = handle_line engine "add t=0" in
  Alcotest.(check string) "third lands on cached" "cached" (scrape_str cached "tier");
  Alcotest.(check (option bool))
    "stale rho flagged" (Some false)
    (Protocol.json_bool_field cached ~key:"rho_fresh");
  let fresh = handle_line engine "add t=100" in
  Alcotest.(check (option bool))
    "full tier is fresh again" (Some true)
    (Protocol.json_bool_field fresh ~key:"rho_fresh")

let test_read_only_verbs_stale_under_load () =
  let engine, _ = make_engine ~config:ladder_config ~n:8 () in
  (* Same burst as the degrade test: five adds at t=0 leave the backlog
     past the shed threshold. *)
  List.iter (fun _ -> ignore (handle_line engine "add t=0")) [ (); (); (); (); () ];
  (* Shed band: the query is still answered — from the last committed
     state, at shed cost, with the verdict withheld and stale flagged. *)
  let shed = handle_line engine "query t=0" in
  check_true "query succeeds under shed" (contains shed "\"ok\":true");
  Alcotest.(check string) "tier shed" "shed" (scrape_str shed "tier");
  check_true "stale flagged" (contains shed "\"stale\":true");
  check_true "verdict withheld" (contains shed "\"verdict\":null");
  check_float ~tol:0. "state still served" 4. (scrape_num shed "active");
  (* Cached band (backlog decayed below shed): still stale, still no
     verdict, but served as cached. *)
  let cached = handle_line engine "query t=0.2" in
  Alcotest.(check string) "tier cached" "cached" (scrape_str cached "tier");
  check_true "cached band is stale too" (contains cached "\"stale\":true");
  check_true "verdict still withheld" (contains cached "\"verdict\":null");
  (* Drained: fresh replies drop the flag and run the verdict. *)
  let fresh = handle_line engine "query t=100" in
  check_false "fresh reply is not stale" (contains fresh "\"stale\"");
  check_false "verdict restored" (contains fresh "\"verdict\":null");
  check_true "verdict present" (contains fresh "\"verdict\":{")

let test_stats_free_and_never_shed () =
  let engine, _ = make_engine ~config:ladder_config ~n:8 () in
  List.iter (fun _ -> ignore (handle_line engine "add t=0")) [ (); (); (); (); () ];
  let s1 = handle_line engine "stats t=0" in
  check_true "stats succeeds under shed" (contains s1 "\"ok\":true");
  Alcotest.(check string) "tagged shed" "shed" (scrape_str s1 "tier");
  check_true "tagged stale" (contains s1 "\"stale\":true");
  check_true "backlog reported" (scrape_num s1 "backlog" > 0.);
  (* A stats probe is free: a second probe at the same time sees the
     identical vclock and backlog (only the seq advanced). *)
  let s2 = handle_line engine "stats t=0" in
  check_float ~tol:0. "no vclock charge" (scrape_num s1 "vclock")
    (scrape_num s2 "vclock");
  check_float ~tol:0. "backlog unchanged" (scrape_num s1 "backlog")
    (scrape_num s2 "backlog");
  check_float ~tol:0. "seq still advances"
    (scrape_num s1 "seq" +. 1.)
    (scrape_num s2 "seq");
  (* served_* counters only count decision events, so the probes did
     not inflate them. *)
  check_float ~tol:0. "stats probes are not decisions" 4.
    (scrape_num s2 "served_full" +. scrape_num s2 "served_incremental"
    +. scrape_num s2 "served_cached")

(* ------------------------------------------------------------------ *)
(* Robustness envelope: retries, backoff, solver failure               *)
(* ------------------------------------------------------------------ *)

let test_backoff_retry_deterministic () =
  (* First attempt of every even-seq solve fails transiently: the retry
     must succeed, the reply must record 2 attempts, and two engines
     with the same hook must produce byte-identical logs. *)
  let hook ~seq ~attempt = attempt = 0 && seq mod 2 = 0 in
  let script = [ "add t=0.1"; "add t=0.2"; "query t=0.3"; "remove conn0 t=0.4" ] in
  let run () =
    let engine, _ = make_engine ~failure_hook:hook ~n:4 () in
    let lines = List.map (handle_line engine) script in
    (lines, handle_line engine "stats")
  in
  let lines_a, stats_a = run () in
  let lines_b, stats_b = run () in
  Alcotest.(check (list string)) "byte-identical decision log" lines_a lines_b;
  Alcotest.(check string) "byte-identical counters" stats_a stats_b;
  check_true "backoffs happened" (scrape_num stats_a "backoffs" >= 1.);
  let retried = List.nth lines_a 1 in
  Alcotest.(check string) "seq 2 retried" "2" (Printf.sprintf "%g" (scrape_num retried "attempts"));
  Alcotest.(check string) "still admitted" "admit" (scrape_str retried "decision")

let test_solver_failure_degrades_then_rejects () =
  (* Every solve attempt for seq 2 fails: the add must walk the whole
     ladder, give up, and reject without corrupting state. *)
  let hook ~seq ~attempt:_ = seq = 2 in
  let engine, _ = make_engine ~failure_hook:hook ~n:4 () in
  let r1 = handle_line engine "add t=0.1" in
  Alcotest.(check string) "first add fine" "admit" (scrape_str r1 "decision");
  let r2 = handle_line engine "add t=0.2" in
  Alcotest.(check string) "rejected" "reject" (scrape_str r2 "decision");
  Alcotest.(check string) "reason: solver" "solver_failure" (scrape_str r2 "reason");
  Alcotest.(check int) "population intact" 1 (Admission.active_count engine);
  (* The next request works again. *)
  let r3 = handle_line engine "add t=0.3" in
  Alcotest.(check string) "back to normal" "admit" (scrape_str r3 "decision")

(* ------------------------------------------------------------------ *)
(* Determinism across --jobs                                           *)
(* ------------------------------------------------------------------ *)

let determinism_script =
  [
    "# comment lines are silent";
    "add t=0.05 size=2";
    "add t=0.1 size=1";
    "add t=0.18";
    "query t=0.2";
    "remove conn1 t=0.3";
    "add t=0.32 size=0.5";
    "add t=0.4";
    "stats";
    "query t=0.5";
    "remove conn0 t=0.6";
    "add t=0.61";
    "stats";
  ]

let run_script_fresh () =
  let engine, _ = make_engine ~n:4 () in
  let server = Server.create engine in
  Server.run_script server determinism_script

let test_jobs_invariant_decision_log () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 1;
      let narrow = run_script_fresh () in
      Pool.set_default_jobs 4;
      let wide = run_script_fresh () in
      Alcotest.(check (list string))
        "decision log byte-identical at jobs 1 vs 4" narrow wide)

(* ------------------------------------------------------------------ *)
(* Snapshot / restart                                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_state_roundtrip () =
  let path = Filename.temp_file "ffc_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let engine, _ = make_engine ~n:4 () in
      ignore (handle_line engine "add t=0.1");
      ignore (handle_line engine "add t=0.2");
      ignore (handle_line engine "remove conn0 t=0.3");
      let state = Admission.state engine in
      let bytes = Snapshot.write ~path state in
      Alcotest.(check int) "write returns the size" bytes
        (String.length (Snapshot.render state));
      match Snapshot.load ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
        check_true "round-trip is exact" (loaded = state);
        Alcotest.(check string)
          "re-render is byte-identical"
          (Snapshot.render state) (Snapshot.render loaded))

let test_snapshot_corruption_detected () =
  let path = Filename.temp_file "ffc_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let engine, _ = make_engine ~n:2 () in
      ignore (handle_line engine "add t=0.1");
      let text = Snapshot.render (Admission.state engine) in
      let write s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s) in
      let fails s =
        write s;
        match Snapshot.load ~path with Ok _ -> false | Error _ -> true
      in
      check_true "bad magic" (fails ("junk\n" ^ text));
      check_true "truncated (no end marker)"
        (fails (String.sub text 0 (String.length text - 5)));
      check_true "garbage" (fails "not a snapshot at all\n");
      (* A snapshot from a differently-configured engine is refused. *)
      write text;
      let other_config = { Admission.default_config with b_ss = 0.25 } in
      let other, _ = make_engine ~config:other_config ~n:2 () in
      (match Snapshot.load ~path with
      | Error e -> Alcotest.fail e
      | Ok s -> (
        match Admission.restore other s with
        | Ok () -> Alcotest.fail "digest mismatch must be refused"
        | Error e -> check_true "mentions the digest" (contains e "digest"))))

let test_restart_resumes_bit_identically () =
  let path = Filename.temp_file "ffc_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let prefix =
        [ "add t=0.05 size=2"; "add t=0.1"; "add t=0.15"; "remove conn1 t=0.2" ]
      in
      let suffix =
        [ "add t=0.25"; "query t=0.3"; "remove conn0 t=0.35"; "add t=0.4"; "stats" ]
      in
      let engine_a, _ = make_engine ~n:4 () in
      let server_a = Server.create ~snapshot_path:path engine_a in
      ignore (Server.run_script server_a prefix);
      ignore (Server.run_script server_a [ "snapshot" ]);
      let pre_kill = Snapshot.render (Admission.state engine_a) in
      (* "Crash": a brand-new engine recovers from the file the first
         incarnation left behind. *)
      let engine_b, _ = make_engine ~n:4 () in
      let server_b = Server.create ~snapshot_path:path engine_b in
      (match Server.recover server_b with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "snapshot not found"
      | Error e -> Alcotest.fail e);
      (* Recovered state is bit-identical to the pre-kill snapshot... *)
      Alcotest.(check string)
        "re-snapshot reproduces the file byte-for-byte" pre_kill
        (Snapshot.render (Admission.state engine_b));
      (* ...and the two incarnations serve the suffix identically. *)
      let replies_a = Server.run_script server_a suffix in
      let replies_b = Server.run_script server_b suffix in
      Alcotest.(check (list string))
        "post-restart decision log byte-identical" replies_a replies_b)

(* ------------------------------------------------------------------ *)
(* Server dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let test_server_dispatch () =
  let engine, _ = make_engine ~n:2 () in
  let server = Server.create engine in
  (match Server.handle_line server "   " with
  | `Silent -> ()
  | _ -> Alcotest.fail "blank lines are silent");
  (match Server.handle_line server "# hello" with
  | `Silent -> ()
  | _ -> Alcotest.fail "comments are silent");
  (* Parse errors still consume a sequence number, keeping replayed
     logs aligned. *)
  (match Server.handle_line server "bogus" with
  | `Reply r ->
    check_true "error reply" (contains r "\"ok\":false");
    check_float ~tol:0. "seq consumed" 1. (scrape_num r "seq")
  | _ -> Alcotest.fail "parse errors reply");
  (match Server.handle_line server "snapshot" with
  | `Reply r -> check_true "snapshot off" (contains r "snapshotting is off")
  | _ -> Alcotest.fail "snapshot without path is an error reply");
  let replies =
    Server.run_script server [ "add t=1"; "shutdown"; "add t=2"; "stats" ]
  in
  Alcotest.(check int) "script stops at shutdown" 2 (List.length replies);
  check_true "shutdown acknowledged"
    (contains (List.nth replies 1) "\"op\":\"shutdown\"")

let test_metrics_verb () =
  let engine, _ = make_engine ~n:2 () in
  let server = Server.create engine in
  (* A bare daemon with no ambient registry refuses cleanly. *)
  (match Server.handle_line server "metrics" with
  | `Reply r ->
    check_true "refused without a registry" (contains r "\"ok\":false");
    check_true "says why" (contains r "no metrics registry")
  | _ -> Alcotest.fail "metrics must reply");
  let ctx = Ffc_obs.Ctx.make ~metrics:(Ffc_obs.Metrics.create ()) () in
  Ffc_obs.Ctx.with_ctx ctx (fun () ->
      ignore (Server.run_script server [ "add t=1"; "query t=2" ]);
      (match Server.handle_line server "metrics" with
      | `Reply r ->
        check_true "ok" (contains r "\"ok\":true");
        Alcotest.(check string) "json format" "json" (scrape_str r "format");
        check_true "latency histogram exposed"
          (contains r "service.latency.full");
        check_true "jain gauge exposed" (contains r "service.jain_fairness")
      | _ -> Alcotest.fail "metrics must reply");
      match Server.handle_line server "metrics prom" with
      | `Reply r ->
        Alcotest.(check string) "prometheus format" "prometheus"
          (scrape_str r "format");
        check_true "prometheus names"
          (contains r "ffc_service_latency_full_bucket")
      | _ -> Alcotest.fail "metrics prom must reply")

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)
(* ------------------------------------------------------------------ *)

let test_size_dist_parse () =
  List.iter
    (fun spec ->
      match Churn.parse_size_dist spec with
      | Ok d -> Alcotest.(check string) spec spec (Churn.describe_size_dist d)
      | Error e -> Alcotest.failf "%s: %s" spec e)
    [ "const:2"; "exp:1.5"; "uniform:0.5:2"; "pareto:1.5:0.25" ];
  let rejects s =
    match Churn.parse_size_dist s with Ok _ -> false | Error _ -> true
  in
  check_true "negative mean" (rejects "exp:-1");
  check_true "inverted bounds" (rejects "uniform:2:1");
  check_true "unknown" (rejects "zipf:2")

let storm_config =
  {
    Admission.default_config with
    backlog_incremental = 0.05;
    backlog_cached = 0.1;
    backlog_shed = 0.2;
    (* Every tier's logical cost exceeds the mean interarrival (1/40),
       so sustained arrivals must walk the whole ladder down to shed. *)
    cost_full = 0.08;
    cost_incremental = 0.05;
    cost_cached = 0.03;
    plan = Fault.plan [ Fault.everywhere (Fault.Flap { period = 6; up = 4 }) ];
  }

let run_storm () =
  let engine, _ = make_engine ~config:storm_config ~n:12 () in
  let server = Server.create engine in
  let log = Buffer.create 4096 in
  let send line =
    match Server.handle_line server line with
    | `Reply r | `Quit r ->
      Buffer.add_string log (r ^ "\n");
      r
    | `Silent -> ""
  in
  let stats =
    Churn.run ~query_every:16 ~seed:11 ~rate:40. ~arrivals:120
      ~size_dist:(Churn.Exp 0.5) ~send ()
  in
  (stats, engine, send, Buffer.contents log)

let test_churn_storm_acceptance () =
  let stats, engine, send, log = run_storm () in
  Alcotest.(check int) "all arrivals sent" 120 stats.Churn.arrivals;
  check_true "some flows admitted" (stats.Churn.admits > 10);
  check_true "overload shed or errored"
    (stats.Churn.sheds + stats.Churn.errors > 0);
  (* Every admitted flow satisfied the Theorem-5 min-ratio floor. *)
  (match stats.Churn.min_min_ratio with
  | None -> Alcotest.fail "no admissions recorded a min-ratio"
  | Some r -> check_true "min-ratio floor held under storm" (r >= 1. -. 1e-6));
  (* Every admitted document eventually departed: the churn driver
     flushed its pending removals, so the universe drains to empty. *)
  Alcotest.(check int) "population drains" 0 (Admission.active_count engine);
  (* The overload really exercised the ladder. *)
  let stats_line = send "stats" in
  check_true "ladder degraded under storm" (scrape_num stats_line "degrades" >= 1.);
  check_true "ladder recovered as backlog drained"
    (scrape_num stats_line "recovers" >= 1.);
  (* Degraded answers are flagged with their tier. *)
  check_true "cached-tier answers flagged" (contains log "\"tier\":\"cached\"");
  (* A calm-time query gets a full supervised verdict (the flap plan
     remaps onto the active sub-population). *)
  ignore (send "add t=1000" : string);
  ignore (send "add t=1000.1" : string);
  let q = send "query t=1001" in
  check_true "supervised verdict present" (contains q "\"outcome\":");
  check_true "verdict carries baselines" (contains q "\"baselines\":")

let test_churn_storm_deterministic () =
  let _, _, _, log_a = run_storm () in
  let _, _, _, log_b = run_storm () in
  Alcotest.(check string) "storm decision log byte-identical" log_a log_b

let suites =
  [
    ( "service.protocol",
      [
        case "request round-trip and rejects" test_protocol_roundtrip;
        case "size distribution parse" test_size_dist_parse;
      ] );
    ( "service.admission",
      [
        case "admissions match fair_masked bit-for-bit" test_admission_matches_fair_masked;
        case "min_rate ingress discard" test_admission_min_rate_reject;
        case "snapshot/shutdown are server-level" test_snapshot_shutdown_are_server_level;
      ] );
    ( "service.ladder",
      [
        case "degrades and recovers deterministically" test_ladder_degrades_and_recovers;
        case "cached tier flags stale rho" test_cached_tier_flags_stale_rho;
        case "read-only verbs stale under load"
          test_read_only_verbs_stale_under_load;
        case "stats is free and never shed" test_stats_free_and_never_shed;
      ] );
    ( "service.envelope",
      [
        case "backoff retries are deterministic" test_backoff_retry_deterministic;
        case "solver failure degrades then rejects" test_solver_failure_degrades_then_rejects;
      ] );
    ( "service.determinism",
      [
        case "decision log jobs-invariant" test_jobs_invariant_decision_log;
        case "churn storm byte-identical" test_churn_storm_deterministic;
      ] );
    ( "service.snapshot",
      [
        case "state round-trip" test_snapshot_state_roundtrip;
        case "corruption and digest mismatch refused" test_snapshot_corruption_detected;
        case "restart resumes bit-identically" test_restart_resumes_bit_identically;
      ] );
    ( "service.server",
      [
        case "dispatch semantics" test_server_dispatch;
        case "metrics verb" test_metrics_verb;
      ] );
    ( "service.churn",
      [ case "storm acceptance" test_churn_storm_acceptance ] );
  ]
