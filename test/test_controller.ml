open Ffc_numerics
open Ffc_topology
open Ffc_core
open Test_util

let single n = Topologies.single ~mu:1. ~n ()

let additive = Rate_adjust.additive ~eta:0.1 ~beta:0.5

let expect_converged = function
  | Controller.Converged { steady; _ } -> steady
  | Controller.Cycle _ -> Alcotest.fail "unexpected cycle"
  | Controller.Diverged _ -> Alcotest.fail "unexpected divergence"
  | Controller.No_convergence _ -> Alcotest.fail "did not converge"

let test_single_connection_converges () =
  (* One connection, B = C/(1+C), individual feedback: b = r exactly, so
     the map is r' = r + eta (beta - r) with fixed point beta. *)
  let net = single 1 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:1 in
  let steady = expect_converged (Controller.run c ~net ~r0:[| 0. |]) in
  check_float ~tol:1e-8 "steady at beta*mu" 0.5 steady.(0)

let test_aggregate_preserves_differences () =
  (* Aggregate + additive gives every connection the same increment, so
     initial rate differences persist into the steady state — the
     unfairness of Theorem 2. *)
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.aggregate_fifo ~adjuster:additive ~n:2 in
  let steady = expect_converged (Controller.run c ~net ~r0:[| 0.1; 0.3 |]) in
  check_float ~tol:1e-7 "difference preserved" 0.2 (steady.(1) -. steady.(0));
  check_float ~tol:1e-7 "total pinned at beta*mu" 0.5 (Vec.sum steady)

let test_individual_erases_differences () =
  (* Individual feedback: unique fair steady state (Theorem 3). *)
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:2 in
  let steady = expect_converged (Controller.run c ~net ~r0:[| 0.1; 0.3 |]) in
  check_vec ~tol:1e-6 "fair split" [| 0.25; 0.25 |] steady

let test_individual_discipline_independent () =
  (* Corollary: same steady state under FIFO and Fair Share. *)
  let net = single 3 in
  let run config =
    let c = Controller.homogeneous ~config ~adjuster:additive ~n:3 in
    expect_converged (Controller.run c ~net ~r0:[| 0.05; 0.2; 0.4 |])
  in
  let fifo = run Feedback.individual_fifo in
  let fs = run Feedback.individual_fair_share in
  check_vec ~tol:1e-6 "FIFO = FS steady state" fifo fs;
  check_vec ~tol:1e-6 "both fair" [| 1. /. 6.; 1. /. 6.; 1. /. 6. |] fs

let test_overload_start_recovers () =
  (* Start far above capacity: queues are infinite, b = 1, rates decrease
     until the system re-enters the stable region. *)
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:2 in
  let steady = expect_converged (Controller.run c ~net ~r0:[| 5.; 8. |]) in
  check_vec ~tol:1e-6 "recovers to fair point" [| 0.25; 0.25 |] steady

let test_zero_truncation () =
  (* A single step from rates that would go negative truncates at 0. *)
  let net = single 1 in
  let aggressive = Rate_adjust.additive ~eta:100. ~beta:0.5 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:aggressive ~n:1 in
  let next = Controller.step c ~net [| 0.9 |] in
  check_true "truncated at zero" (next.(0) >= 0.)

let test_trajectory_shape () =
  let net = single 1 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:1 in
  let traj = Controller.trajectory c ~net ~r0:[| 0. |] ~steps:10 in
  Alcotest.(check int) "11 states" 11 (Array.length traj);
  check_float "starts at r0" 0. traj.(0).(0);
  check_true "monotone approach from below"
    (Array.for_all2 (fun a b -> b.(0) >= a.(0)) (Array.sub traj 0 10) (Array.sub traj 1 10))

let test_unstable_aggregate_does_not_converge () =
  (* Section 3.3: eigenvalue 1 - eta*N = -2 at N = 30, eta = 0.1: the fair
     steady state is unstable; truncation keeps the orbit bounded so it
     lands on a cycle (or fails to converge), never on the steady state. *)
  let n = 30 in
  let net = single n in
  let c = Controller.homogeneous ~config:Feedback.aggregate_fifo ~adjuster:additive ~n in
  let r0 = Array.init n (fun i -> 0.5 /. float_of_int n *. (1. +. (0.01 *. float_of_int i))) in
  match Controller.run ~max_steps:5_000 c ~net ~r0 with
  | Controller.Converged _ -> Alcotest.fail "unstable system must not converge"
  | Controller.Cycle _ | Controller.Diverged _ | Controller.No_convergence _ -> ()

let test_stable_aggregate_converges () =
  (* Below the threshold N < 2/eta the same system converges. *)
  let n = 10 in
  let net = single n in
  let c = Controller.homogeneous ~config:Feedback.aggregate_fifo ~adjuster:additive ~n in
  let r0 = Array.init n (fun i -> 0.01 *. float_of_int (i + 1)) in
  let steady = expect_converged (Controller.run c ~net ~r0) in
  check_float ~tol:1e-6 "total at beta*mu" 0.5 (Vec.sum steady)

let test_cycle_detection () =
  (* eta = 2.5 on a single connection: the scalar map r' = r + eta(beta-r)
     has slope 1 - eta = -1.5: unstable fixed point, bounded 2-cycle. *)
  let net = single 1 in
  let wild = Rate_adjust.additive ~eta:2.5 ~beta:0.5 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:wild ~n:1 in
  match Controller.run ~max_steps:10_000 c ~net ~r0:[| 0.4 |] with
  | Controller.Cycle { period; orbit } ->
    Alcotest.(check int) "period 2" 2 period;
    Alcotest.(check int) "orbit length" 2 (Array.length orbit)
  | Controller.Converged _ -> Alcotest.fail "fixed point is unstable at eta=2.5"
  | Controller.Diverged _ -> Alcotest.fail "orbit is bounded"
  | Controller.No_convergence _ -> Alcotest.fail "2-cycle should be detected"

let test_heterogeneous_adjusters () =
  (* Aggregate feedback with different betas: the timid connection is
     driven to zero (Section 3.4's starvation dynamic). *)
  let net = single 2 in
  let c =
    Controller.create ~config:Feedback.aggregate_fifo
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
  in
  let steady = expect_converged (Controller.run c ~net ~r0:[| 0.2; 0.2 |]) in
  check_float ~tol:1e-7 "timid starved" 0. steady.(0);
  check_float ~tol:1e-6 "greedy takes beta_greedy * mu" 0.7 steady.(1)

let test_steady_state_predicate () =
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:2 in
  check_true "fair point is steady" (Controller.steady_state c ~net [| 0.25; 0.25 |]);
  check_false "non-steady point rejected" (Controller.steady_state c ~net [| 0.1; 0.1 |])

let test_mismatched_sizes_rejected () =
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:3 in
  check_true "wrong adjuster count rejected"
    (try
       ignore (Controller.step c ~net [| 0.1; 0.1 |]);
       false
     with Invalid_argument _ -> true)

let test_multi_gateway_bottleneck () =
  (* Parking lot with a fat second gateway: the long connection is
     bottlenecked at gw0; the cross connection at gw1 grabs the slack
     (max-min fairness). *)
  let gws =
    [|
      { Network.gw_name = "g0"; mu = 1.; latency = 0. };
      { Network.gw_name = "g1"; mu = 2.; latency = 0. };
    |]
  in
  let conns =
    [|
      { Network.conn_name = "long"; path = [ 0; 1 ] };
      { Network.conn_name = "cross0"; path = [ 0 ] };
      { Network.conn_name = "cross1"; path = [ 1 ] };
    |]
  in
  let net = Network.create ~gateways:gws ~connections:conns in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:3 in
  let steady = expect_converged (Controller.run c ~net ~r0:[| 0.1; 0.1; 0.1 |]) in
  let expected = Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net in
  check_vec ~tol:1e-5 "matches water-filling" expected steady

let test_step_subset () =
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:2 in
  let r = [| 0.1; 0.1 |] in
  let next = Controller.step_subset c ~net ~mask:[| true; false |] r in
  check_false "masked-in connection moved" (next.(0) = r.(0));
  check_float "masked-out connection held" r.(1) next.(1);
  (* All-true mask equals the synchronous step. *)
  check_vec "full mask = step" (Controller.step c ~net r)
    (Controller.step_subset c ~net ~mask:[| true; true |] r);
  Alcotest.check_raises "mask length checked"
    (Invalid_argument "Controller.step_subset: mask length mismatch") (fun () ->
      ignore (Controller.step_subset c ~net ~mask:[| true |] r))

let test_run_async_reaches_fair_point () =
  let net = single 3 in
  let c = Controller.homogeneous ~config:Feedback.individual_fair_share ~adjuster:additive ~n:3 in
  let rng = Rng.create 77 in
  match Controller.run_async ~p:0.3 ~rng c ~net ~r0:[| 0.02; 0.2; 0.4 |] with
  | Controller.Converged { steady; _ } ->
    check_vec ~tol:1e-5 "async fair point" [| 1. /. 6.; 1. /. 6.; 1. /. 6. |] steady
  | _ -> Alcotest.fail "async schedule should converge"

let test_escape_threaded_sync_and_async () =
  (* r' = 2r doubles every step: from r0 = 1 the orbit crosses a
     threshold E at step ceil(log2 E), so the step at which Diverged
     fires reveals which escape threshold was actually used. *)
  let net = single 1 in
  let doubler = Rate_adjust.make ~name:"doubler" (fun ~r ~b:_ ~d:_ -> r) in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:doubler ~n:1 in
  let diverged_at = function
    | Controller.Diverged { at_step } -> at_step
    | _ -> Alcotest.fail "expected divergence"
  in
  let sync_custom = diverged_at (Controller.run ~escape:100. c ~net ~r0:[| 1. |]) in
  let sync_default = diverged_at (Controller.run c ~net ~r0:[| 1. |]) in
  Alcotest.(check int) "sync: 2^7 = 128 > 100" 7 sync_custom;
  Alcotest.(check int) "sync: default threshold is 1e12" 40 sync_default;
  (* The async runner must thread the same parameter instead of its old
     hardcoded 1e12; with p = 1 every mask is all-true, so its orbit is
     the synchronous one. *)
  let async_custom =
    diverged_at
      (Controller.run_async ~p:1. ~escape:100. ~rng:(Rng.create 7) c ~net ~r0:[| 1. |])
  in
  let async_default =
    diverged_at (Controller.run_async ~p:1. ~rng:(Rng.create 7) c ~net ~r0:[| 1. |])
  in
  Alcotest.(check int) "async honors custom escape" 7 async_custom;
  Alcotest.(check int) "async default matches run's" 40 async_default

let test_nan_adjuster_is_divergence () =
  (* Regression: Rate_adjust.eval raises Failure on a NaN adjustment, and
     run used to let that exception kill the whole sweep.  It must now
     degrade to Diverged at the offending step, in both runners. *)
  let net = single 1 in
  let poison =
    Rate_adjust.make ~name:"nan-after-3" (fun ~r ~b:_ ~d:_ ->
        if r > 0.3 then Float.nan else 0.2)
  in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:poison ~n:1 in
  (match Controller.run c ~net ~r0:[| 0. |] with
  | Controller.Diverged { at_step } -> check_true "past the clean steps" (at_step > 0)
  | _ -> Alcotest.fail "NaN-producing adjuster must report Diverged");
  match Controller.run_async ~p:1. ~rng:(Rng.create 5) c ~net ~r0:[| 0. |] with
  | Controller.Diverged _ -> ()
  | _ -> Alcotest.fail "async runner must also report Diverged"

let test_non_finite_r0_is_divergence_at_zero () =
  (* A non-finite start must not crash inside the queueing layer's rate
     validation: it is divergence before the first step. *)
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:2 in
  List.iter
    (fun r0 ->
      (match Controller.run c ~net ~r0 with
      | Controller.Diverged { at_step } -> Alcotest.(check int) "at step 0" 0 at_step
      | _ -> Alcotest.fail "bad r0 must report Diverged");
      match Controller.run_async ~rng:(Rng.create 3) c ~net ~r0 with
      | Controller.Diverged { at_step } -> Alcotest.(check int) "async at step 0" 0 at_step
      | _ -> Alcotest.fail "async bad r0 must report Diverged")
    [ [| Float.nan; 0.1 |]; [| 0.1; Float.infinity |] ]

let test_trace_csv () =
  let traj = [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |] |] in
  let csv = Trace.csv_of_trajectory ~names:[| "a"; "b" |] traj in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "step,a,b" (List.hd lines);
  check_true "roundtrip precision"
    (match String.split_on_char ',' (List.nth lines 1) with
     | [ "0"; a; b ] -> float_of_string a = 0.1 && float_of_string b = 0.2
     | _ -> false);
  (* Default names and empty trajectory. *)
  Alcotest.(check string) "empty" "step\n" (Trace.csv_of_trajectory [||]);
  check_true "default names"
    (String.length (Trace.csv_of_trajectory [| [| 1. |] |]) > 0);
  check_true "ragged rejected"
    (try ignore (Trace.csv_of_trajectory [| [| 1. |]; [| 1.; 2. |] |]); false
     with Invalid_argument _ -> true);
  (* The dimension-mismatch errors must say which constraint broke, so a
     caller wiring up column names can tell the two apart. *)
  Alcotest.check_raises "names length mismatch message"
    (Invalid_argument "Trace.csv_of_trajectory: names length mismatch")
    (fun () ->
      ignore (Trace.csv_of_trajectory ~names:[| "only" |] [| [| 1.; 2. |] |]));
  Alcotest.check_raises "ragged trajectory message"
    (Invalid_argument "Trace.csv_of_trajectory: ragged trajectory")
    (fun () -> ignore (Trace.csv_of_trajectory [| [| 1. |]; [| 1.; 2. |] |]))

let test_trace_series_and_file () =
  let csv = Trace.csv_of_series ~name:"q" [| 1.; 2. |] in
  check_true "series header" (String.length csv > 0);
  let path = Filename.temp_file "ffc_trace" ".csv" in
  Trace.write_file ~path csv;
  let read = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check string) "file roundtrip" csv read;
  Sys.remove path

let test_r0_not_aliased () =
  (* trajectory and run must store private copies of r0: mutating the
     caller's array after the call must not corrupt the results. *)
  let net = single 2 in
  let c = Controller.homogeneous ~config:Feedback.individual_fifo ~adjuster:additive ~n:2 in
  let r0 = [| 0.1; 0.3 |] in
  let traj = Controller.trajectory c ~net ~r0 ~steps:2 in
  r0.(0) <- 99.;
  check_vec "recorded start survives caller mutation" [| 0.1; 0.3 |] traj.(0);
  let r0 = [| 0.1; 0.3 |] in
  (match Controller.run ~max_steps:0 c ~net ~r0 with
  | Controller.No_convergence { last } ->
    r0.(1) <- 42.;
    check_vec "run result survives caller mutation" [| 0.1; 0.3 |] last
  | _ -> Alcotest.fail "max_steps 0 cannot converge")

let test_fused_evaluate_matches_separate () =
  (* Feedback.evaluate (one pass over the gateways) must return exactly
     the vectors the separate signals and delays entry points compute,
     including the zero-rate sojourn limit. *)
  let net = Topologies.parking_lot ~hops:3 ~latency:0.1 () in
  let n = Network.num_connections net in
  let rates =
    Array.init n (fun i -> if i = 1 then 0. else 0.02 +. (0.03 *. float_of_int i))
  in
  List.iter
    (fun (name, config) ->
      let b, d = Feedback.evaluate config ~net ~rates in
      check_vec ~tol:0. (name ^ ": fused signals exact")
        (Feedback.signals config ~net ~rates)
        b;
      check_vec ~tol:0. (name ^ ": fused delays exact")
        (Feedback.delays config ~net ~rates)
        d)
    [
      ("aggregate", Feedback.aggregate_fifo);
      ("individual+fifo", Feedback.individual_fifo);
      ("individual+fair-share", Feedback.individual_fair_share);
    ]

let prop_individual_fair_from_random_starts =
  (* Theorem 3 as a property: every converged run of TSI individual
     feedback lands on the same fair point regardless of start. *)
  prop "individual feedback is guaranteed fair from any start" ~count:25
    QCheck2.Gen.(array_size (pure 3) (float_range 0. 1.2))
    (fun r0 ->
      let net = single 3 in
      let c =
        Controller.homogeneous ~config:Feedback.individual_fair_share ~adjuster:additive
          ~n:3
      in
      match Controller.run c ~net ~r0 with
      | Controller.Converged { steady; _ } ->
        Vec.approx_equal ~tol:1e-5 steady [| 1. /. 6.; 1. /. 6.; 1. /. 6. |]
      | _ -> false)

let suites =
  [
    ( "core.controller",
      [
        case "single connection converges" test_single_connection_converges;
        case "aggregate preserves differences" test_aggregate_preserves_differences;
        case "individual erases differences" test_individual_erases_differences;
        case "discipline-independent steady state" test_individual_discipline_independent;
        case "recovery from overload" test_overload_start_recovers;
        case "truncation at zero" test_zero_truncation;
        case "trajectory shape" test_trajectory_shape;
        case "unstable aggregate (N=30)" test_unstable_aggregate_does_not_converge;
        case "stable aggregate (N=10)" test_stable_aggregate_converges;
        case "cycle detection" test_cycle_detection;
        case "heterogeneous starvation" test_heterogeneous_adjusters;
        case "steady-state predicate" test_steady_state_predicate;
        case "size validation" test_mismatched_sizes_rejected;
        case "multi-gateway bottleneck" test_multi_gateway_bottleneck;
        case "subset updates" test_step_subset;
        case "async run reaches fair point" test_run_async_reaches_fair_point;
        case "escape threaded through run and run_async" test_escape_threaded_sync_and_async;
        case "NaN adjuster degrades to Diverged" test_nan_adjuster_is_divergence;
        case "non-finite r0 diverges at step 0" test_non_finite_r0_is_divergence_at_zero;
        case "trace CSV" test_trace_csv;
        case "trace series and file" test_trace_series_and_file;
        case "r0 not aliased into results" test_r0_not_aliased;
        case "fused evaluate = signals + delays" test_fused_evaluate_matches_separate;
        prop_individual_fair_from_random_starts;
      ] );
  ]
