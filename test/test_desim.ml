open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_desim
open Test_util

(* ------------------------------------------------------------------ *)
(* Event heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  List.iter (fun (t, v) -> Event_heap.push h ~time:t v) [ (3., "c"); (1., "a"); (2., "b") ];
  let popped = List.init 3 (fun _ -> Event_heap.pop_min h) in
  let values = List.map (function Some (_, v) -> v | None -> "?") popped in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] values;
  check_true "empty at end" (Event_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> Event_heap.push h ~time:1. v) [ 1; 2; 3 ];
  let values = List.init 3 (fun _ -> match Event_heap.pop_min h with Some (_, v) -> v | None -> 0) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3 ] values

let test_heap_interleaved () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:5. 5;
  Event_heap.push h ~time:1. 1;
  (match Event_heap.pop_min h with
  | Some (t, 1) -> check_float "first pop" 1. t
  | _ -> Alcotest.fail "expected (1., 1)");
  Event_heap.push h ~time:0.5 0;
  (match Event_heap.pop_min h with
  | Some (_, v) -> Alcotest.(check int) "newly pushed smaller" 0 v
  | None -> Alcotest.fail "heap not empty");
  Alcotest.(check int) "size" 1 (Event_heap.size h)

let test_heap_nonfinite_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan time" (Invalid_argument "Event_heap.push: non-finite time")
    (fun () -> Event_heap.push h ~time:Float.nan ())

let test_heap_large_random () =
  let h = Event_heap.create () in
  let rng = Rng.create 99 in
  for _ = 1 to 1000 do
    Event_heap.push h ~time:(Rng.uniform rng) ()
  done;
  let last = ref neg_infinity in
  let sorted = ref true in
  for _ = 1 to 1000 do
    match Event_heap.pop_min h with
    | Some (t, ()) ->
      if t < !last then sorted := false;
      last := t
    | None -> sorted := false
  done;
  check_true "1000 random events pop sorted" !sorted

let test_heap_popped_payloads_collectable () =
  (* Popping must clear the vacated slot: a payload that the caller has
     dropped may not stay reachable from the heap's backing array. *)
  let h = Event_heap.create () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Event_heap.push h ~time:(float_of_int i) payload
  done;
  for _ = 1 to n - 1 do
    ignore (Event_heap.pop_min h)
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr live
  done;
  (* Only the one un-popped payload may survive. *)
  Alcotest.(check int) "popped payloads collected" 1 !live;
  check_true "heap still usable" (Event_heap.size h = 1);
  ignore (Sys.opaque_identity h)

let test_heap_shrinks_when_quarter_full () =
  let h = Event_heap.create () in
  for i = 1 to 1024 do
    Event_heap.push h ~time:(float_of_int i) i
  done;
  let cap_full = Event_heap.capacity h in
  check_true "grew to hold 1024" (cap_full >= 1024);
  for _ = 1 to 1000 do
    ignore (Event_heap.pop_min h)
  done;
  check_true
    (Printf.sprintf "capacity released (%d -> %d)" cap_full (Event_heap.capacity h))
    (Event_heap.capacity h < cap_full / 4);
  (* Shrinking must not disturb ordering of the survivors. *)
  let values =
    List.init 24 (fun _ -> match Event_heap.pop_min h with Some (_, v) -> v | None -> 0)
  in
  Alcotest.(check (list int)) "survivors in order" (List.init 24 (fun i -> 1001 + i)) values;
  check_true "never below minimum capacity" (Event_heap.capacity h >= 16)

(* ------------------------------------------------------------------ *)
(* Sim core                                                            *)
(* ------------------------------------------------------------------ *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:2. (fun () -> log := "b" :: !log);
  Sim.schedule sim ~at:1. (fun () -> log := "a" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "execution order" [ "a"; "b" ] (List.rev !log);
  check_float "clock at last event" 2. (Sim.now sim)

let test_sim_cascading () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    Stdlib.incr count;
    if !count < 5 then Sim.schedule_after sim ~delay:1. tick
  in
  Sim.schedule sim ~at:0. tick;
  Sim.run sim;
  Alcotest.(check int) "cascade count" 5 !count;
  check_float "final clock" 4. (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    Stdlib.incr count;
    Sim.schedule_after sim ~delay:1. tick
  in
  Sim.schedule sim ~at:0. tick;
  Sim.run ~until:3.5 sim;
  Alcotest.(check int) "only events <= until" 4 !count;
  check_float "clock advanced to until" 3.5 (Sim.now sim);
  check_true "later events still pending" (Sim.pending sim > 0)

let test_sim_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:5. (fun () -> ());
  Sim.run sim;
  Alcotest.check_raises "past scheduling" (Invalid_argument "Sim.schedule: time in the past")
    (fun () -> Sim.schedule sim ~at:1. (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)
(* ------------------------------------------------------------------ *)

let test_measure_occupancy () =
  let m = Measure.create () in
  Measure.incr m ~key:(0, 0) ~now:0.;
  Measure.incr m ~key:(0, 0) ~now:1.;
  Measure.decr m ~key:(0, 0) ~now:3.;
  (* Level 1 on [0,1), 2 on [1,3), 1 on [3,4): mean (1+4+1)/4 = 1.5. *)
  check_float "time-weighted occupancy" 1.5 (Measure.mean_occupancy m ~key:(0, 0) ~now:4.);
  Alcotest.(check int) "instantaneous" 1 (Measure.occupancy m ~key:(0, 0))

let test_measure_reset () =
  let m = Measure.create () in
  Measure.incr m ~key:(0, 0) ~now:0.;
  Measure.reset m ~now:10.;
  (* Level stays 1 across the reset; mean over the new window is 1. *)
  check_float "post-reset mean" 1. (Measure.mean_occupancy m ~key:(0, 0) ~now:12.);
  Measure.record_delay m ~conn:0 5.;
  Measure.reset m ~now:20.;
  Alcotest.(check int) "delays cleared" 0 (Measure.delay_count m ~conn:0)

let test_measure_negative_occupancy () =
  let m = Measure.create () in
  Alcotest.check_raises "decr below zero"
    (Invalid_argument "Measure.decr: occupancy would go negative") (fun () ->
      Measure.decr m ~key:(0, 0) ~now:0.)

let test_measure_delays () =
  let m = Measure.create () in
  Measure.record_delay m ~conn:1 2.;
  Measure.record_delay m ~conn:1 4.;
  check_float "delay mean" 3. (Measure.delay_mean m ~conn:1);
  Alcotest.(check int) "delay count" 2 (Measure.delay_count m ~conn:1);
  check_float "unseen conn" 0. (Measure.delay_mean m ~conn:9)

let test_measure_deliveries () =
  let m = Measure.create () in
  Measure.count_delivery m ~conn:0;
  Measure.count_delivery m ~conn:0;
  Alcotest.(check int) "two deliveries" 2 (Measure.deliveries m ~conn:0);
  Alcotest.(check int) "unseen conn" 0 (Measure.deliveries m ~conn:3)

(* ------------------------------------------------------------------ *)
(* Source                                                              *)
(* ------------------------------------------------------------------ *)

let test_source_rate () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let pool = Packet.Pool.create () in
  let count = ref 0 in
  let src =
    Source.create ~sim ~rng ~pool ~conn:0 ~rate:5.
      ~emit:(fun p -> Stdlib.incr count; Packet.Pool.free pool p) ()
  in
  Source.start src;
  Sim.run ~until:1000. sim;
  (* ~5000 arrivals expected; Poisson sd ~ 71. *)
  check_true "arrival count near rate*horizon"
    (Float.abs (float_of_int !count -. 5000.) < 300.);
  Alcotest.(check int) "emitted counter" !count (Source.emitted src)

let test_source_zero_rate () =
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let pool = Packet.Pool.create () in
  let src = Source.create ~sim ~rng ~pool ~conn:0 ~rate:0. ~emit:(fun _ -> ()) () in
  Source.start src;
  Sim.run ~until:10. sim;
  Alcotest.(check int) "no packets" 0 (Source.emitted src)

let test_source_interarrival_exponential () =
  let sim = Sim.create () in
  let rng = Rng.create 21 in
  let pool = Packet.Pool.create () in
  let times = ref [] in
  let src =
    Source.create ~sim ~rng ~pool ~conn:0 ~rate:2.
      ~emit:(fun p -> times := Sim.now sim :: !times; Packet.Pool.free pool p) ()
  in
  Source.start src;
  Sim.run ~until:5000. sim;
  let ts = Array.of_list (List.rev !times) in
  let gaps = Array.init (Array.length ts - 1) (fun i -> ts.(i + 1) -. ts.(i)) in
  check_float ~tol:0.02 "mean gap 1/rate" 0.5 (Stats.mean gaps);
  (* Exponential: sd = mean. *)
  check_float ~tol:0.03 "sd of gaps = mean" 0.5 (Stats.stddev gaps)

(* ------------------------------------------------------------------ *)
(* Server against M/M/1 theory                                         *)
(* ------------------------------------------------------------------ *)

let run_single_gateway ~discipline ~rates ~mu ~seed ~horizon =
  let net = Topologies.single ~mu ~n:(Array.length rates) () in
  Netsim.run ~net ~rates ~discipline ~seed ~horizon ()

let test_mm1_occupancy () =
  (* Single connection, rho = 0.5: E[N] = 1. *)
  let r = run_single_gateway ~discipline:Netsim.Fifo ~rates:[| 0.5 |] ~mu:1. ~seed:42
      ~horizon:200_000. in
  check_float ~tol:0.05 "M/M/1 mean occupancy" 1. (Netsim.mean_queue r ~gw:0 ~conn:0)

let test_mm1_sojourn () =
  let r = run_single_gateway ~discipline:Netsim.Fifo ~rates:[| 0.5 |] ~mu:1. ~seed:43
      ~horizon:200_000. in
  (* E[T] = 1/(mu - lambda) = 2. *)
  check_float ~tol:0.1 "M/M/1 sojourn" 2. (Netsim.delay_mean r ~conn:0)

let test_mm1_throughput () =
  let r = run_single_gateway ~discipline:Netsim.Fifo ~rates:[| 0.5 |] ~mu:1. ~seed:44
      ~horizon:100_000. in
  check_float ~tol:0.02 "delivered = offered" 0.5 (Netsim.throughput r ~conn:0)

let test_fifo_two_connections () =
  let rates = [| 0.25; 0.5 |] and mu = 1. in
  let r = run_single_gateway ~discipline:Netsim.Fifo ~rates ~mu ~seed:45 ~horizon:200_000. in
  let expected = Fifo.queue_lengths ~mu rates in
  check_float ~tol:0.08 "conn0 queue" expected.(0) (Netsim.mean_queue r ~gw:0 ~conn:0);
  check_float ~tol:0.12 "conn1 queue" expected.(1) (Netsim.mean_queue r ~gw:0 ~conn:1)

let test_fs_two_connections () =
  let rates = [| 0.2; 0.6 |] and mu = 1. in
  let r = run_single_gateway ~discipline:Netsim.Fs_priority ~rates ~mu ~seed:46
      ~horizon:200_000. in
  let expected = Fair_share.queue_lengths ~mu rates in
  check_float ~tol:0.05 "slow conn queue (FS)" expected.(0) (Netsim.mean_queue r ~gw:0 ~conn:0);
  check_float ~tol:0.25 "fast conn queue (FS)" expected.(1) (Netsim.mean_queue r ~gw:0 ~conn:1)

let test_fs_isolation_in_simulation () =
  (* The overload isolation of Theorem 5, observed packet-by-packet: the
     slow connection's queue stays near its analytic value even though the
     fast connection saturates the gateway. *)
  let rates = [| 0.1; 1.4 |] and mu = 1. in
  let r = run_single_gateway ~discipline:Netsim.Fs_priority ~rates ~mu ~seed:47
      ~horizon:100_000. in
  let expected_slow = Mm1.g 0.2 /. 2. in
  check_float ~tol:0.05 "slow queue isolated under overload" expected_slow
    (Netsim.mean_queue r ~gw:0 ~conn:0);
  (* Slow connection still delivers its full offered load. *)
  check_float ~tol:0.01 "slow throughput preserved" 0.1 (Netsim.throughput r ~conn:0)

let test_fifo_no_isolation_in_simulation () =
  (* Same overload under FIFO: the slow connection's queue grows without
     bound (far beyond its subcritical value). *)
  let rates = [| 0.1; 1.4 |] and mu = 1. in
  let r = run_single_gateway ~discipline:Netsim.Fifo ~rates ~mu ~seed:48 ~horizon:20_000. in
  check_true "slow queue blows up under FIFO"
    (Netsim.mean_queue r ~gw:0 ~conn:0 > 10.)

let test_fq_fairness () =
  (* Fair queueing approximates FS: under overload by the fast connection
     the slow one still gets its throughput. *)
  let rates = [| 0.1; 1.4 |] and mu = 1. in
  let r = run_single_gateway ~discipline:Netsim.Fair_queueing ~rates ~mu ~seed:49
      ~horizon:50_000. in
  check_float ~tol:0.02 "slow throughput preserved under FQ" 0.1
    (Netsim.throughput r ~conn:0)

let test_two_hop_network () =
  (* Tandem M/M/1 queues: each hop behaves as an independent M/M/1 (Burke:
     Poisson output), so per-hop occupancy matches g(rho) at both. *)
  let net = Topologies.chain ~mu:1. ~hops:2 ~conns:1 () in
  let r = Netsim.run ~net ~rates:[| 0.5 |] ~discipline:Netsim.Fifo ~seed:50
      ~horizon:100_000. () in
  check_float ~tol:0.08 "hop 0 occupancy" 1. (Netsim.mean_queue r ~gw:0 ~conn:0);
  check_float ~tol:0.08 "hop 1 occupancy" 1. (Netsim.mean_queue r ~gw:1 ~conn:0)

let test_latency_adds_to_delay () =
  let net = Topologies.single ~mu:1. ~latency:3. ~n:1 () in
  let r = Netsim.run ~net ~rates:[| 0.5 |] ~discipline:Netsim.Fifo ~seed:51
      ~horizon:100_000. () in
  (* Sojourn 2 plus line latency 3. *)
  check_float ~tol:0.1 "delay includes latency" 5. (Netsim.delay_mean r ~conn:0)

let test_determinism () =
  let run () =
    let r = run_single_gateway ~discipline:Netsim.Fifo ~rates:[| 0.4 |] ~mu:1. ~seed:52
        ~horizon:5_000. in
    Netsim.mean_queue r ~gw:0 ~conn:0
  in
  check_float "same seed, same result" (run ()) (run ())

let test_seed_sensitivity () =
  let run seed =
    let r = run_single_gateway ~discipline:Netsim.Fifo ~rates:[| 0.4 |] ~mu:1. ~seed
        ~horizon:5_000. in
    Netsim.mean_queue r ~gw:0 ~conn:0
  in
  check_false "different seeds differ" (run 1 = run 2)

let test_netsim_validation () =
  let net = Topologies.single ~n:1 () in
  check_true "rate length mismatch rejected"
    (try
       ignore (Netsim.run ~net ~rates:[| 1.; 2. |] ~discipline:Netsim.Fifo ~seed:1
                 ~horizon:10. ());
       false
     with Invalid_argument _ -> true);
  check_true "bad horizon rejected"
    (try
       ignore (Netsim.run ~net ~rates:[| 1. |] ~discipline:Netsim.Fifo ~seed:1
                 ~warmup:10. ~horizon:5. ());
       false
     with Invalid_argument _ -> true)

let test_littles_law_in_simulation () =
  (* L = lambda * W per connection: the time-average queue equals the
     delivered rate times the mean sojourn (single FIFO gateway, so the
     end-to-end delay is exactly the sojourn). *)
  let rates = [| 0.2; 0.4 |] and mu = 1. in
  let r = run_single_gateway ~discipline:Netsim.Fifo ~rates ~mu ~seed:61
      ~horizon:100_000. in
  Array.iteri
    (fun i _ ->
      let l = Netsim.mean_queue r ~gw:0 ~conn:i in
      let lam = Netsim.throughput r ~conn:i in
      let w = Netsim.delay_mean r ~conn:i in
      check_float_rel ~tol:0.03 (Printf.sprintf "L = lambda W (conn %d)" i) (lam *. w) l)
    rates

let prop_work_conservation_sim =
  (* Total occupancy is discipline independent (conservation): FIFO and FS
     agree on the total queue within simulation noise. *)
  prop "simulated total queue is discipline-independent" ~count:5
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rates = [| 0.2; 0.4 |] and mu = 1. in
      let total d =
        let r = run_single_gateway ~discipline:d ~rates ~mu ~seed ~horizon:50_000. in
        Netsim.total_mean_queue r ~gw:0
      in
      let fifo = total Netsim.Fifo and fs = total Netsim.Fs_priority in
      Float.abs (fifo -. fs) <= 0.25 *. Float.max 1. fifo)

(* ------------------------------------------------------------------ *)
(* Timing wheel vs. reference heap                                     *)
(* ------------------------------------------------------------------ *)

let test_wheel_ties_fifo () =
  let w = Timing_wheel.create ~tick:1. () in
  for i = 1 to 3 do
    Timing_wheel.schedule w ~time:5. ~handler:i ~a:0 ~b:0
  done;
  let order =
    List.init 3 (fun _ ->
        check_true "pop succeeds" (Timing_wheel.pop w);
        Timing_wheel.popped_handler w)
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3 ] order

let test_wheel_overflow_far_future () =
  (* With tick = 1 the three levels cover 2^24 ticks; these events span
     nine decades, so most start in the overflow heap and must cascade
     back through every level before popping — still in time order. *)
  let w = Timing_wheel.create ~tick:1. () in
  let times = [ 0.5; 3.; 260.; 70_000.; 2e7; 5e8; 1e9; 1e9 +. 1. ] in
  List.iteri (fun i t -> Timing_wheel.schedule w ~time:t ~handler:i ~a:0 ~b:0) times;
  let popped =
    List.map
      (fun _ ->
        check_true "pop succeeds" (Timing_wheel.pop w);
        Timing_wheel.popped_time w)
      times
  in
  Alcotest.(check (list (float 0.))) "far-future events pop sorted"
    (List.sort compare times) popped;
  Alcotest.(check int) "wheel drained" 0 (Timing_wheel.size w)

let test_wheel_validation () =
  check_true "non-positive tick rejected"
    (try ignore (Timing_wheel.create ~tick:0. ()); false
     with Invalid_argument _ -> true);
  let w = Timing_wheel.create ~tick:1. () in
  Alcotest.check_raises "time beyond range"
    (Invalid_argument "Timing_wheel.schedule: time beyond wheel range for tick width")
    (fun () -> Timing_wheel.schedule w ~time:1.3e18 ~handler:0 ~a:0 ~b:0);
  Alcotest.check_raises "nan time"
    (Invalid_argument "Timing_wheel.schedule: time must be finite and non-negative")
    (fun () -> Timing_wheel.schedule w ~time:Float.nan ~handler:0 ~a:0 ~b:0)

let test_wheel_next_time () =
  let w = Timing_wheel.create ~tick:0.5 () in
  check_float "empty wheel" Float.infinity (Timing_wheel.next_time w);
  Timing_wheel.schedule w ~time:42. ~handler:0 ~a:0 ~b:0;
  Timing_wheel.schedule w ~time:7. ~handler:0 ~a:0 ~b:0;
  check_float "earliest pending" 7. (Timing_wheel.next_time w);
  ignore (Timing_wheel.pop w);
  check_float "after pop" 42. (Timing_wheel.next_time w)

let prop_wheel_matches_heap =
  (* The satellite contract: on randomized schedules — ties, cascades,
     overflow hops, interleaved pops — the wheel pops the exact (time,
     sequence) order of the reference heap scheduler. *)
  prop "wheel pops identically to reference heap" ~count:60
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 0 2))
    (fun (seed, tick_sel) ->
      let tick = [| 1.0; 0.015625; 37.5 |].(tick_sel) in
      let heap = Scheduler.create Scheduler.Heap in
      let wheel = Scheduler.create (Scheduler.Wheel { tick }) in
      let rng = Rng.create (seed + 1) in
      let now = ref 0. in
      let ok = ref true in
      let pop_both () =
        let hp = Scheduler.pop heap and wp = Scheduler.pop wheel in
        if hp <> wp then ok := false
        else if hp then begin
          if
            not
              (Scheduler.popped_time heap = Scheduler.popped_time wheel
              && Scheduler.popped_handler heap = Scheduler.popped_handler wheel
              && Scheduler.popped_a heap = Scheduler.popped_a wheel)
          then ok := false;
          now := Scheduler.popped_time heap
        end
      in
      let n = ref 0 in
      for step = 1 to 400 do
        if !ok then
          if Rng.uniform rng < 0.65 then begin
            (* Times at/after the popped clock: a tick-grid draw forces
               ties, the mid range exercises cascades, the far range the
               overflow heap. *)
            let v = Rng.uniform rng in
            let dt =
              if v < 0.3 then float_of_int (Rng.int rng 4) *. tick
              else if v < 0.85 then Rng.uniform rng *. 30. *. tick
              else Rng.uniform rng *. 3e7 *. tick
            in
            let time = !now +. dt in
            incr n;
            Scheduler.schedule heap ~time ~handler:step ~a:!n ~b:0;
            Scheduler.schedule wheel ~time ~handler:step ~a:!n ~b:0
          end
          else pop_both ()
      done;
      while !ok && Scheduler.size heap > 0 do
        pop_both ()
      done;
      !ok && Scheduler.size wheel = 0)

(* ------------------------------------------------------------------ *)
(* Packet pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_recycling () =
  let p = Packet.Pool.create ~initial:16 () in
  let a = Packet.Pool.alloc p ~conn:3 ~born:1.5 in
  Alcotest.(check int) "conn stored" 3 (Packet.Pool.conn p a);
  check_float "born stored" 1.5 (Packet.Pool.born p a);
  Packet.Pool.free p a;
  let b = Packet.Pool.alloc p ~conn:4 ~born:2. in
  Alcotest.(check int) "freed slot recycled" a b;
  Alcotest.(check int) "fresh conn" 4 (Packet.Pool.conn p b);
  Alcotest.(check int) "recycled fields reset" 0 (Packet.Pool.klass p b);
  Alcotest.(check int) "one live" 1 (Packet.Pool.live p);
  Alcotest.(check int) "two allocations total" 2 (Packet.Pool.allocated p)

let test_pool_growth () =
  let p = Packet.Pool.create ~initial:16 () in
  let ids = List.init 100 (fun i -> Packet.Pool.alloc p ~conn:i ~born:0.) in
  check_true "capacity grew" (Packet.Pool.capacity p >= 100);
  Alcotest.(check int) "all live" 100 (Packet.Pool.live p);
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "ids distinct" 100 (List.length distinct);
  List.iteri
    (fun i id -> Alcotest.(check int) "payload survives growth" i (Packet.Pool.conn p id))
    ids

let test_pool_exhaustion () =
  let p = Packet.Pool.create ~initial:4 ~max_packets:8 () in
  for i = 0 to 7 do
    ignore (Packet.Pool.alloc p ~conn:i ~born:0.)
  done;
  Alcotest.check_raises "exhaustion names the limit"
    (Failure "Packet.Pool.alloc: pool exhausted (8 packets in flight, max_packets=8)")
    (fun () -> ignore (Packet.Pool.alloc p ~conn:9 ~born:0.))

let test_pool_no_reuse_while_live () =
  let p = Packet.Pool.create ~initial:16 () in
  let module S = Set.Make (Int) in
  let live = ref S.empty in
  let rng = Rng.create 77 in
  for _ = 1 to 2_000 do
    if Rng.uniform rng < 0.6 || S.is_empty !live then begin
      let id = Packet.Pool.alloc p ~conn:0 ~born:0. in
      check_false "allocated id not already in flight" (S.mem id !live);
      live := S.add id !live
    end
    else begin
      let victim = S.choose !live in
      Packet.Pool.free p victim;
      live := S.remove victim !live
    end
  done;
  Alcotest.(check int) "live counter tracks set" (S.cardinal !live) (Packet.Pool.live p)

let test_pool_double_free () =
  let p = Packet.Pool.create ~initial:16 () in
  let a = Packet.Pool.alloc p ~conn:0 ~born:0. in
  Packet.Pool.free p a;
  Alcotest.check_raises "double free detected"
    (Invalid_argument
       (Printf.sprintf "Packet.Pool.free: packet %d is not in flight (double free?)" a))
    (fun () -> Packet.Pool.free p a);
  check_false "never-allocated id is not live" (Packet.Pool.is_live p 9)

(* ------------------------------------------------------------------ *)
(* Sharded simulation: byte-identical at any shards/jobs/scheduler     *)
(* ------------------------------------------------------------------ *)

let fingerprint net r =
  let n = Network.num_connections net in
  let gws = Network.num_gateways net in
  let f =
    List.concat
      [
        List.concat
          (List.init gws (fun a ->
               List.init n (fun i -> Netsim.mean_queue r ~gw:a ~conn:i)));
        List.init n (fun i -> Netsim.delay_mean r ~conn:i);
        List.init n (fun i -> Netsim.delay_ci95 r ~conn:i);
        List.init n (fun i -> Netsim.throughput r ~conn:i);
        List.init n (fun i -> float_of_int (Netsim.deliveries r ~conn:i));
        List.init n (fun i -> float_of_int (Netsim.drops r ~conn:i));
      ]
  in
  (f, Netsim.events r)

let shard_net () = Topologies.multi_parking_lot ~mu:1. ~latency:0.1 ~lots:6 ~hops:2 ()

let shard_rates net =
  Array.init (Network.num_connections net) (fun i ->
      0.15 +. (0.03 *. float_of_int (i mod 5)))

let test_shard_invariance () =
  let net = shard_net () in
  let rates = shard_rates net in
  let run ~shards ~jobs =
    fingerprint net
      (Netsim.run ~net ~rates ~discipline:Netsim.Fs_priority ~seed:91 ~shards ~jobs
         ~horizon:2_000. ())
  in
  let base = run ~shards:1 ~jobs:1 in
  check_true "baseline delivers" (List.exists (fun x -> x > 0.) (fst base));
  List.iter
    (fun (shards, jobs) ->
      check_true
        (Printf.sprintf "shards=%d jobs=%d bitwise-identical" shards jobs)
        (run ~shards ~jobs = base))
    [ (2, 1); (3, 2); (6, 4); (17, 4) ]

let test_shard_invariance_with_drops () =
  (* Overload + finite buffers: the on-drop path must shard identically
     too. *)
  let net = shard_net () in
  let rates =
    Array.init (Network.num_connections net) (fun i ->
        if i mod 3 = 0 then 1.4 else 0.2)
  in
  let run ~shards ~jobs =
    fingerprint net
      (Netsim.run ~net ~rates ~discipline:Netsim.Fifo ~seed:92 ~shards ~jobs
         ~buffer_limit:8 ~horizon:1_000. ())
  in
  let base = run ~shards:1 ~jobs:1 in
  let _, events = base in
  check_true "events counted" (events > 0);
  check_true "drops occurred"
    (let r =
       Netsim.run ~net ~rates ~discipline:Netsim.Fifo ~seed:92 ~buffer_limit:8
         ~horizon:1_000. ()
     in
     List.exists
       (fun i -> Netsim.drops r ~conn:i > 0)
       (List.init (Network.num_connections net) Fun.id));
  check_true "dropful run bitwise-identical across shards" (run ~shards:6 ~jobs:3 = base)

let test_scheduler_invariance () =
  let net = shard_net () in
  let rates = shard_rates net in
  let run scheduler =
    fingerprint net
      (Netsim.run ~net ~rates ~discipline:Netsim.Fair_queueing ~seed:93 ~scheduler
         ~shards:3 ~horizon:1_500. ())
  in
  check_true "heap and wheel bitwise-identical" (run `Heap = run `Wheel)

let test_components_counted () =
  let net = shard_net () in
  let r =
    Netsim.run ~net ~rates:(shard_rates net) ~discipline:Netsim.Fifo ~seed:94
      ~horizon:50. ()
  in
  Alcotest.(check int) "six disjoint lots" 6 (Netsim.components r);
  let single = Topologies.single ~n:3 () in
  let r1 =
    Netsim.run ~net:single ~rates:[| 0.1; 0.1; 0.1 |] ~discipline:Netsim.Fifo ~seed:94
      ~horizon:50. ()
  in
  Alcotest.(check int) "one shared gateway" 1 (Netsim.components r1)

let test_shard_trace_invariance () =
  (* The satellite regression: traced runs are byte-identical whatever
     the shard and jobs counts. *)
  let open Ffc_obs in
  let net = shard_net () in
  let rates = shard_rates net in
  let trace ~shards ~jobs =
    let sink = Sink.buffer () in
    let ctx = Ctx.make ~sink ~stride:20 () in
    ignore
      (Ctx.with_ctx ctx (fun () ->
           Netsim.run ~net ~rates ~discipline:Netsim.Fs_priority ~seed:95 ~shards ~jobs
             ~horizon:500. ()));
    Sink.contents sink
  in
  let a = trace ~shards:1 ~jobs:1 in
  check_true "trace non-empty" (String.length a > 0);
  Alcotest.(check string) "trace identical at shards=4 jobs=3" a (trace ~shards:4 ~jobs:3);
  Alcotest.(check string) "trace identical at shards=6 jobs=1" a (trace ~shards:6 ~jobs:1)

let suites =
  [
    ( "desim.event_heap",
      [
        case "ordering" test_heap_ordering;
        case "fifo on ties" test_heap_fifo_ties;
        case "interleaved" test_heap_interleaved;
        case "non-finite rejected" test_heap_nonfinite_rejected;
        case "large random" test_heap_large_random;
        case "popped payloads collectable" test_heap_popped_payloads_collectable;
        case "shrinks when quarter full" test_heap_shrinks_when_quarter_full;
      ] );
    ( "desim.sim",
      [
        case "ordering" test_sim_ordering;
        case "cascading" test_sim_cascading;
        case "run until" test_sim_until;
        case "past rejected" test_sim_past_rejected;
      ] );
    ( "desim.measure",
      [
        case "occupancy" test_measure_occupancy;
        case "reset" test_measure_reset;
        case "negative occupancy" test_measure_negative_occupancy;
        case "delays" test_measure_delays;
        case "deliveries" test_measure_deliveries;
      ] );
    ( "desim.source",
      [
        case "rate" test_source_rate;
        case "zero rate" test_source_zero_rate;
        case "exponential gaps" test_source_interarrival_exponential;
      ] );
    ( "desim.netsim",
      [
        case "M/M/1 occupancy" test_mm1_occupancy;
        case "M/M/1 sojourn" test_mm1_sojourn;
        case "M/M/1 throughput" test_mm1_throughput;
        case "FIFO two connections" test_fifo_two_connections;
        case "FS two connections" test_fs_two_connections;
        case "FS isolation under overload" test_fs_isolation_in_simulation;
        case "FIFO lacks isolation" test_fifo_no_isolation_in_simulation;
        case "FQ preserves slow throughput" test_fq_fairness;
        case "two-hop tandem" test_two_hop_network;
        case "latency in delay" test_latency_adds_to_delay;
        case "determinism" test_determinism;
        case "seed sensitivity" test_seed_sensitivity;
        case "input validation" test_netsim_validation;
        case "Little law in simulation" test_littles_law_in_simulation;
        prop_work_conservation_sim;
      ] );
    ( "desim.timing_wheel",
      [
        case "ties pop in insertion order" test_wheel_ties_fifo;
        case "overflow far future" test_wheel_overflow_far_future;
        case "validation" test_wheel_validation;
        case "next_time" test_wheel_next_time;
        prop_wheel_matches_heap;
      ] );
    ( "desim.packet_pool",
      [
        case "free-list recycling" test_pool_recycling;
        case "growth" test_pool_growth;
        case "exhaustion" test_pool_exhaustion;
        case "no id reuse while live" test_pool_no_reuse_while_live;
        case "double free" test_pool_double_free;
      ] );
    ( "desim.shards",
      [
        case "stats bitwise-identical across shards/jobs" test_shard_invariance;
        case "drop path shard-invariant" test_shard_invariance_with_drops;
        case "heap vs wheel identical" test_scheduler_invariance;
        case "component discovery" test_components_counted;
        case "traces byte-identical across shards" test_shard_trace_invariance;
      ] );
  ]
