(* Span tracing: deterministic identity (ids and logical clocks), the
   separate wall-clock timing channel, and the byte-identity contracts
   the spans extend — jobs-invariance, cache cold vs warm, snapshot
   restart — plus the trace report / stats cross-check. *)

open Ffc_obs
open Ffc_topology
open Ffc_core
open Ffc_service
open Test_util

(* Run [f] under a fresh tracing context inside a capture boundary, so
   span ids and the logical clock start from zero — what a fresh
   process (or one pooled task) sees.  Returns (result, trace). *)
let traced ?(timing = false) f =
  let sink = Sink.buffer () in
  let ctx = Ctx.make ~sink ~timing () in
  Ctx.with_ctx ctx (fun () -> Sink.capture f)

let trace_of ?timing f = snd (traced ?timing f)

let lines s =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' s)

let span_lines s =
  List.filter
    (fun l ->
      match Jsonf.string_field l ~key:"ev" with
      | Some ("span.start" | "span.end") -> true
      | _ -> false)
    (lines s)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Identity: ids, nesting, logical clock                               *)
(* ------------------------------------------------------------------ *)

let test_nesting_ids_and_clock () =
  let trace =
    trace_of (fun () ->
        Span.with_span "outer" (fun () ->
            Span.with_span "inner_a" (fun () -> ());
            Span.with_span "inner_b" (fun () -> ()));
        Span.with_span ~attrs:[ ("tier", Jsonf.string "full") ] "root2"
          (fun () -> ()))
  in
  Alcotest.(check (list string))
    "exact span stream"
    [
      {|{"ev":"span.start","id":"0","name":"outer","lc":0}|};
      {|{"ev":"span.start","id":"0.0","name":"inner_a","lc":1}|};
      {|{"ev":"span.end","id":"0.0","name":"inner_a","lc":2,"wall_ns":0,"alloc_w":0}|};
      {|{"ev":"span.start","id":"0.1","name":"inner_b","lc":3}|};
      {|{"ev":"span.end","id":"0.1","name":"inner_b","lc":4,"wall_ns":0,"alloc_w":0}|};
      {|{"ev":"span.end","id":"0","name":"outer","lc":5,"wall_ns":0,"alloc_w":0}|};
      {|{"ev":"span.start","id":"1","name":"root2","lc":6,"tier":"full"}|};
      {|{"ev":"span.end","id":"1","name":"root2","lc":7,"wall_ns":0,"alloc_w":0}|};
    ]
    (lines trace)

let test_off_handle_and_no_ctx () =
  (* No ambient context: spans are free no-ops and values flow through. *)
  Ctx.clear ();
  let s = Span.start "anything" in
  check_false "no ctx: start returns off" (Span.on s);
  Span.finish s;
  check_false "off is off" (Span.on Span.off);
  Span.finish Span.off;
  Alcotest.(check int) "with_span passes the result through" 7
    (Span.with_span "x" (fun () -> 7));
  (* Null sink: a context alone does not enable spans either. *)
  let ctx = Ctx.make () in
  Ctx.with_ctx ctx (fun () ->
      check_false "null sink: start returns off" (Span.on (Span.start "y")))

let test_timing_channel () =
  (* timing on: the end event carries real (nonnegative) wall/alloc. *)
  (* Allocate on the minor heap (small boxed values, not one big array
     which goes straight to the major heap and would not show up in the
     minor-words delta). *)
  let churn () =
    let acc = ref [] in
    for i = 1 to 1000 do
      acc := float_of_int i :: !acc
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let trace =
    trace_of ~timing:true (fun () -> Span.with_span "work" churn)
  in
  (match
     List.filter
       (fun l -> Jsonf.string_field l ~key:"ev" = Some "span.end")
       (lines trace)
   with
  | [ e ] ->
    let field k =
      match Jsonf.number_field e ~key:k with
      | Some v -> v
      | None -> Alcotest.failf "no %s in %s" k e
    in
    check_true "wall_ns >= 0" (field "wall_ns" >= 0.);
    check_true "alloc_w counts the churn" (field "alloc_w" > 1000.)
  | l -> Alcotest.failf "expected one span.end, got %d" (List.length l));
  (* timing off: both channels are exactly zero. *)
  let trace0 = trace_of ~timing:false (fun () -> Span.with_span "work" churn) in
  check_true "deterministic timing renders 0"
    (List.exists (fun l -> contains l {|"wall_ns":0,"alloc_w":0|}) (lines trace0))

let test_exception_safety_and_idempotence () =
  let trace =
    trace_of (fun () ->
        (* with_span finishes on unwind. *)
        (try Span.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        (* A raw start whose finish never runs leaves an unmatched
           start; closing the parent abandons it. *)
        let parent = Span.start "parent" in
        ignore (Span.start "orphan" : Span.t);
        Span.finish parent;
        Span.finish parent (* idempotent: second finish is silent *))
  in
  let acc = Trace_report.of_lines (lines trace) in
  let count name =
    match
      List.find_opt (fun p -> p.Trace_report.ph_name = name)
        (Trace_report.phases acc)
    with
    | Some p -> p.Trace_report.ph_count
    | None -> 0
  in
  Alcotest.(check int) "exception still closed boom" 1 (count "boom");
  Alcotest.(check int) "parent closed once" 1 (count "parent");
  Alcotest.(check int) "orphan start stays unmatched" 1
    (Trace_report.unmatched_starts acc)

(* ------------------------------------------------------------------ *)
(* Determinism: jobs, cache cold/warm, snapshot restart                *)
(* ------------------------------------------------------------------ *)

let with_jobs jobs f =
  let saved = Ffc_numerics.Pool.default_jobs () in
  Ffc_numerics.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Ffc_numerics.Pool.set_default_jobs saved) f

let test_pool_spans_jobs_invariant () =
  let run jobs =
    trace_of (fun () ->
        ignore
          (Ffc_numerics.Pool.parallel_map ~jobs
             (fun i ->
               Span.with_span (Printf.sprintf "task%d" (i mod 3)) (fun () ->
                   Span.with_span "leaf" (fun () -> i)))
             (Array.init 24 Fun.id)))
  in
  let reference = run 1 in
  check_true "tasks actually traced spans"
    (contains reference {|"name":"leaf"|});
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "span stream identical at jobs=%d" jobs)
        reference (run jobs))
    [ 2; 4; 24 ]

(* The real solve pipeline: fair rates + sparse DF + spectral radius.
   A fresh topology per run keeps the process-global sparsity-pattern
   memo cold both times, so the runs are structurally identical. *)
let test_solve_pipeline_spans_jobs_invariant () =
  let run jobs =
    with_jobs jobs (fun () ->
        trace_of (fun () ->
            let net = Topologies.parking_lot ~hops:4 () in
            let n = Network.num_connections net in
            let c =
              Controller.homogeneous ~config:Feedback.individual_fair_share
                ~adjuster:Scenario.standard_adjuster ~n
            in
            let ss =
              Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
            in
            let df = Jacobian.of_controller_sparse c ~net ~at:ss in
            ignore (Jacobian.spectral_radius_sparse df : float)))
  in
  let narrow = run 1 in
  List.iter
    (fun name ->
      check_true (name ^ " span present") (contains narrow ("\"" ^ name ^ "\"")))
    [ "steady.fair"; "jac.sparse"; "sparsity.probe" ];
  Alcotest.(check string) "solve span stream identical at jobs 1 vs 4" narrow
    (run 4)

let rm_rf dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> go (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then go dir

let test_cache_cold_warm_spans_identical () =
  let dir = Filename.temp_file "ffc_span_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cache = Ffc_cache.Cache.create ~dir () in
      let net = Topologies.parking_lot ~hops:3 () in
      let solve () =
        ignore
          (Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
            : float array)
      in
      Ffc_cache.Cache.with_cache cache (fun () ->
          let cold = trace_of solve in
          let warm = trace_of solve in
          (* The one store happens on the miss alone... *)
          check_true "cold run stores (cache.put span)"
            (contains cold {|"name":"cache.put"|});
          check_false "warm run does not store"
            (contains warm {|"name":"cache.put"|});
          (* ...and the probe span fires on hit and miss alike: up to
             the put the streams are byte-identical, and the span
             identities (ids and names) match throughout — only the
             logical clock drifts past the put, which the timing
             contract places outside byte identity. *)
          let prefix t =
            List.filter
              (fun l -> not (contains l {|"name":"cache.put"|}))
              (span_lines t)
          in
          let until_put t =
            let rec take = function
              | l :: _ when contains l {|"name":"cache.put"|} -> []
              | l :: rest -> l :: take rest
              | [] -> []
            in
            take (span_lines t)
          in
          let cold_prefix = until_put cold in
          Alcotest.(check (list string))
            "byte-identical up to the cold run's store" cold_prefix
            (List.filteri
               (fun i _ -> i < List.length cold_prefix)
               (span_lines warm));
          let identity l =
            ( Jsonf.string_field l ~key:"ev",
              Jsonf.string_field l ~key:"id",
              Jsonf.string_field l ~key:"name" )
          in
          Alcotest.(check int)
            "same span count modulo cache.put"
            (List.length (prefix cold))
            (List.length (prefix warm));
          List.iter2
            (fun c w ->
              check_true "span identity matches cold vs warm"
                (identity c = identity w))
            (prefix cold) (prefix warm);
          let c = Ffc_cache.Cache.counters cache in
          Alcotest.(check int) "second run hit" 1 c.Ffc_cache.Cache.hits))

(* Snapshot restart: a recovered daemon serves the suffix with the same
   spans, byte for byte, as the incarnation that never crashed.  Both
   engines share one topology value so the process-global sparsity memo
   treats them alike. *)
let test_restart_resumes_identical_spans () =
  let path = Filename.temp_file "ffc_span_snap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let net = Topologies.single ~mu:1. ~n:4 () in
      let adjuster = Rate_adjust.additive ~eta:0.1 ~beta:0.5 in
      let engine () =
        Admission.create
          (Controller.homogeneous ~config:Feedback.individual_fair_share
             ~adjuster ~n:4)
          ~net
      in
      (* A flap storm: rapid joins and leaves, then the suffix. *)
      let prefix =
        [
          "add t=0.05"; "add t=0.1"; "remove conn0 t=0.15"; "add t=0.2";
          "remove conn1 t=0.25"; "add t=0.3";
        ]
      in
      let suffix =
        [ "add t=0.35"; "query t=0.4"; "remove conn2 t=0.45"; "stats" ]
      in
      let engine_a = engine () in
      let server_a = Server.create ~snapshot_path:path engine_a in
      ignore (trace_of (fun () -> Server.run_script server_a prefix) : string);
      ignore (Server.run_script server_a [ "snapshot" ]);
      let engine_b = engine () in
      let server_b = Server.create ~snapshot_path:path engine_b in
      (match Server.recover server_b with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "snapshot not found"
      | Error e -> Alcotest.fail e);
      let replies_a = ref [] and replies_b = ref [] in
      let trace_a =
        trace_of (fun () -> replies_a := Server.run_script server_a suffix)
      in
      let trace_b =
        trace_of (fun () -> replies_b := Server.run_script server_b suffix)
      in
      Alcotest.(check (list string))
        "post-restart replies byte-identical" !replies_a !replies_b;
      check_true "suffix traced svc.request spans"
        (contains trace_a {|"name":"svc.request"|});
      Alcotest.(check string) "post-restart span stream byte-identical" trace_a
        trace_b)

(* ------------------------------------------------------------------ *)
(* The cross-check: trace report vs the daemon's own counters          *)
(* ------------------------------------------------------------------ *)

let test_trace_report_agrees_with_stats () =
  let net = Topologies.single ~mu:1. ~n:4 () in
  let adjuster = Rate_adjust.additive ~eta:0.1 ~beta:0.5 in
  let engine =
    Admission.create
      (Controller.homogeneous ~config:Feedback.individual_fair_share ~adjuster
         ~n:4)
      ~net
  in
  let server = Server.create engine in
  let script =
    [
      "add t=0.1"; "add t=0.2"; "add t=0.3"; "remove conn1 t=0.4";
      "query t=0.5"; "add t=0.6"; "stats";
    ]
  in
  let replies = ref [] in
  let trace = trace_of (fun () -> replies := Server.run_script server script) in
  let stats_line =
    match List.rev !replies with
    | last :: _ -> last
    | [] -> Alcotest.fail "no replies"
  in
  let counter name =
    match Protocol.json_number_field stats_line ~key:name with
    | Some v -> int_of_float v
    | None -> Alcotest.failf "no %S in %s" name stats_line
  in
  let acc = Trace_report.of_lines (lines trace) in
  let tier name =
    match List.assoc_opt name (Trace_report.tiers acc) with
    | Some n -> n
    | None -> 0
  in
  (* Every decision event the trace aggregated must match the served_*
     counters the daemon reports — the acceptance cross-check. *)
  Alcotest.(check int) "full tier agrees" (counter "served_full") (tier "full");
  Alcotest.(check int)
    "incremental tier agrees"
    (counter "served_incremental")
    (tier "incremental");
  Alcotest.(check int)
    "cached tier agrees" (counter "served_cached") (tier "cached");
  Alcotest.(check int) "shed tier agrees" (counter "served_shed") (tier "shed");
  check_true "decisions were actually served" (counter "served_full" > 0);
  (* And the report itself balances. *)
  Alcotest.(check int) "no unmatched starts" 0 (Trace_report.unmatched_starts acc);
  let request_spans =
    match
      List.find_opt
        (fun p -> p.Trace_report.ph_name = "svc.request")
        (Trace_report.phases acc)
    with
    | Some p -> p.Trace_report.ph_count
    | None -> 0
  in
  Alcotest.(check int) "one svc.request span per request" (List.length script)
    request_spans

let suites =
  [
    ( "span.core",
      [
        case "nesting, ids and the logical clock" test_nesting_ids_and_clock;
        case "off handle and missing context" test_off_handle_and_no_ctx;
        case "timing channel on/off" test_timing_channel;
        case "exception safety and idempotent finish"
          test_exception_safety_and_idempotence;
      ] );
    ( "span.determinism",
      [
        case "pool spans jobs-invariant" test_pool_spans_jobs_invariant;
        case "solve pipeline spans jobs-invariant"
          test_solve_pipeline_spans_jobs_invariant;
        case "cache cold vs warm spans identical"
          test_cache_cold_warm_spans_identical;
        case "snapshot restart resumes identical spans"
          test_restart_resumes_identical_spans;
      ] );
    ( "span.report",
      [
        case "trace report agrees with stats counters"
          test_trace_report_agrees_with_stats;
      ] );
  ]
