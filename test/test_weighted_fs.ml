open Ffc_numerics
open Ffc_queueing
open Test_util

let test_reduces_to_fs_at_equal_weights () =
  let rates = [| 0.3; 0.9; 0.1; 0.5 |] and mu = 2. in
  let weights = Array.make 4 1. in
  check_vec ~tol:1e-12 "equal weights = Fair Share"
    (Fair_share.queue_lengths ~mu rates)
    (Weighted_fair_share.queue_lengths ~mu ~weights rates)

let test_reduces_to_fs_at_uniform_scaled_weights () =
  (* Weights are scale free: all-2 weights equal all-1 weights. *)
  let rates = [| 0.3; 0.9; 0.1 |] and mu = 2. in
  check_vec ~tol:1e-12 "weight scale irrelevant"
    (Weighted_fair_share.queue_lengths ~mu ~weights:[| 1.; 1.; 1. |] rates)
    (Weighted_fair_share.queue_lengths ~mu ~weights:[| 2.; 2.; 2. |] rates)

let test_normalized_rates () =
  check_vec "phi" [| 0.5; 0.25 |]
    (Weighted_fair_share.normalized_rates ~weights:[| 2.; 4. |] [| 1.; 1. |])

let test_fair_cumulative_load () =
  (* weights (1,3), rates (1,3): phi = (1,1); T_0 = 1*1 + 3*1 = 4. *)
  check_float "tied phis" 4.
    (Weighted_fair_share.fair_cumulative_load ~weights:[| 1.; 3. |] [| 1.; 3. |] 0);
  (* weights (1,1), rates (1,3): T_1 = min(1,3) + 3 = 4. *)
  check_float "unweighted matches FS" 4.
    (Weighted_fair_share.fair_cumulative_load ~weights:[| 1.; 1. |] [| 1.; 3. |] 1)

let test_conservation () =
  let rates = [| 0.2; 0.5; 0.3 |] and weights = [| 1.; 2.; 4. |] and mu = 2. in
  let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
  check_float ~tol:1e-9 "work conserved" (Mm1.g (Vec.sum rates /. mu)) (Vec.sum q)

let test_weight_proportional_occupancy_at_equal_phi () =
  (* Equal phi: rates proportional to weights; queues must then also be
     weight proportional (they all share every level). *)
  let weights = [| 1.; 3. |] in
  let rates = [| 0.2; 0.6 |] and mu = 2. in
  let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
  check_float ~tol:1e-9 "queues weight-proportional" 3. (q.(1) /. q.(0))

let test_weighted_isolation () =
  (* A low-phi connection stays finite under overload by a high-phi one. *)
  let weights = [| 4.; 1. |] in
  let rates = [| 0.4; 3.0 |] and mu = 1. in
  let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
  check_true "heavy-weight low-phi connection isolated" (Float.is_finite q.(0));
  check_true "flooding connection saturates" (q.(1) = Float.infinity);
  (* Its fair cumulative load: phi_0 = 0.1; T_0 = 4*0.1 + 1*0.1 = 0.5 < 1. *)
  check_float "T_0" 0.5 (Weighted_fair_share.fair_cumulative_load ~weights rates 0)

let test_weighted_robustness_bound () =
  let weights = [| 1.; 2.; 5. |] and mu = 4. in
  let rng = Rng.create 77 in
  for _ = 1 to 200 do
    let rates = Array.init 3 (fun _ -> Rng.float rng mu) in
    let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
    Array.iteri
      (fun i qi ->
        let bound = Weighted_fair_share.robustness_bound ~mu ~weights rates i in
        if Float.is_finite bound then
          check_true "weighted Theorem-5 bound" (qi <= bound +. 1e-9))
      q
  done

let test_unit_weight_bound_cross_check () =
  (* Audit pin (Theorem 5): at unit weights the weighted bound must
     reduce to the unweighted criterion r_i/(mu - N*r_i) — the fair
     SHARE (1/N)*g(N*r_i/mu) of the queue if everyone ran at r_i — and
     NOT the dedicated-server occupancy N*r_i/(mu - N*r_i), which is N
     times looser.  The share form is tight: the minimum-rate
     connection's unweighted Fair Share queue is exactly
     g(N*r_min/mu)/N, so equality there rules the looser formula out. *)
  let n = 3 and mu = 4. in
  let weights = Array.make n 1. in
  let rng = Rng.create 99 in
  for _ = 1 to 200 do
    (* Keep everyone unsaturated: N*r_i < mu for all i. *)
    let rates = Array.init n (fun _ -> Rng.float rng (0.9 *. mu /. float_of_int n)) in
    for i = 0 to n - 1 do
      let weighted = Weighted_fair_share.robustness_bound ~mu ~weights rates i in
      let unweighted = rates.(i) /. (mu -. (float_of_int n *. rates.(i))) in
      check_float ~tol:1e-12
        (Printf.sprintf "unit weights reduce to r/(mu-N*r) at %d" i)
        unweighted weighted
    done;
    (* Equality at the minimum-rate connection against the real queue. *)
    let q = Fair_share.queue_lengths ~mu rates in
    let imin = ref 0 in
    Array.iteri (fun i r -> if r < rates.(!imin) then imin := i) rates;
    if rates.(!imin) > 0. then begin
      let bound = Weighted_fair_share.robustness_bound ~mu ~weights rates !imin in
      check_float ~tol:1e-9 "min-rate connection meets the bound exactly"
        bound q.(!imin);
      check_true "dedicated-server reading would be N x looser"
        (float_of_int n *. bound > q.(!imin) +. 1e-12)
    end
  done

let test_service_wrapper () =
  let weights = [| 1.; 2. |] in
  let svc = Weighted_fair_share.service ~weights in
  let rates = [| 0.3; 0.4 |] in
  check_vec ~tol:1e-12 "service dispatch"
    (Weighted_fair_share.queue_lengths ~mu:2. ~weights rates)
    (Service.queue_lengths svc ~mu:2. rates)

let test_validation () =
  check_true "zero weight rejected"
    (try
       ignore (Weighted_fair_share.queue_lengths ~mu:1. ~weights:[| 0. |] [| 0.1 |]);
       false
     with Invalid_argument _ -> true);
  check_true "length mismatch rejected"
    (try
       ignore (Weighted_fair_share.queue_lengths ~mu:1. ~weights:[| 1. |] [| 0.1; 0.2 |]);
       false
     with Invalid_argument _ -> true)

let gen_config =
  QCheck2.Gen.(
    triple
      (array_size (int_range 1 6) (float_range 0. 0.5))
      (array_size (int_range 1 6) (float_range 0.1 4.))
      (float_range 1. 8.))

let prop_conservation =
  prop "weighted FS conserves work" gen_config (fun (rates, weights, mu) ->
      Array.length rates <> Array.length weights
      || Vec.sum rates >= 0.95 *. mu
      ||
      let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
      Float.abs (Vec.sum q -. Mm1.g (Vec.sum rates /. mu)) <= 1e-6)

let prop_phi_order =
  prop "queues ordered by normalized rate" gen_config (fun (rates, weights, mu) ->
      Array.length rates <> Array.length weights
      || Vec.sum rates >= 0.95 *. mu
      ||
      let phi = Array.map2 (fun r w -> r /. w) rates weights in
      let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
      let per_weight = Array.map2 (fun qi w -> qi /. w) q weights in
      let ok = ref true in
      Array.iteri
        (fun i pi ->
          Array.iteri
            (fun j pj ->
              if pi < pj && per_weight.(i) > per_weight.(j) +. 1e-9 then ok := false)
            phi)
        phi;
      !ok)

let prop_triangularity =
  (* Locality: raising the largest-phi connection's rate leaves lower-phi
     queues unchanged (the Theorem-4 structure, weighted). *)
  prop "weighted FS queues are local in phi order" gen_config
    (fun (rates, weights, mu) ->
      Array.length rates <> Array.length weights
      || Array.length rates < 2
      || Vec.sum rates >= 0.9 *. mu
      ||
      let phi = Array.map2 (fun r w -> r /. w) rates weights in
      let imax = Vec.argmax phi in
      let q = Weighted_fair_share.queue_lengths ~mu ~weights rates in
      let bumped = Array.copy rates in
      bumped.(imax) <- bumped.(imax) +. (0.01 *. weights.(imax));
      let q' = Weighted_fair_share.queue_lengths ~mu ~weights bumped in
      let ok = ref true in
      Array.iteri
        (fun i qi ->
          if i <> imax && phi.(i) < phi.(imax) && Float.is_finite qi then
            if Float.abs (q'.(i) -. qi) > 1e-9 *. (1. +. qi) then ok := false)
        q;
      !ok)

let suites =
  [
    ( "queueing.weighted_fair_share",
      [
        case "reduces to FS (equal weights)" test_reduces_to_fs_at_equal_weights;
        case "weight scale free" test_reduces_to_fs_at_uniform_scaled_weights;
        case "normalized rates" test_normalized_rates;
        case "fair cumulative load" test_fair_cumulative_load;
        case "conservation" test_conservation;
        case "weight-proportional occupancy" test_weight_proportional_occupancy_at_equal_phi;
        case "weighted isolation" test_weighted_isolation;
        case "weighted robustness bound" test_weighted_robustness_bound;
        case "unit-weight bound cross-check" test_unit_weight_bound_cross_check;
        case "service wrapper" test_service_wrapper;
        case "validation" test_validation;
        prop_conservation;
        prop_phi_order;
        prop_triangularity;
      ] );
  ]
