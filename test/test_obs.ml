open Ffc_obs
open Test_util

(* ------------------------------------------------------------------ *)
(* A minimal validating JSON parser — enough to check that every line  *)
(* the trace layer emits is well-formed and to pull out fields.        *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d in %s" msg !pos s)) in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "short \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* Test-only: BMP code points render as '?' outside ASCII. *)
          Buffer.add_char buf (if code < 128 then Char.chr code else '?');
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jlist [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Jlist (items [])
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
      if !pos + 4 <= len && String.sub s !pos 4 = "true" then (pos := !pos + 4; Jbool true)
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= len && String.sub s !pos 5 = "false" then (pos := !pos + 5; Jbool false)
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= len && String.sub s !pos 4 = "null" then (pos := !pos + 4; Jnull)
      else fail "bad literal"
    | _ -> Jnum (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let obj_field line name =
  match parse_json line with
  | Jobj fields -> List.assoc_opt name fields
  | _ -> None

let lines_of s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_semantics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Alcotest.(check int) "fresh counter is 0" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 5;
  Alcotest.(check int) "incr + add" 6 (Metrics.Counter.value c);
  (* Get-or-create: the same name resolves to the same cell. *)
  let c' = Metrics.counter m "a.count" in
  Metrics.Counter.incr c';
  Alcotest.(check int) "same cell via name" 7 (Metrics.Counter.value c);
  check_true "negative add rejected"
    (try Metrics.Counter.add c (-1); false with Invalid_argument _ -> true);
  let g = Metrics.gauge m "a.gauge" in
  Metrics.Gauge.set g 2.5;
  check_float "gauge set" 2.5 (Metrics.Gauge.value g);
  check_true "kind mismatch rejected"
    (try ignore (Metrics.gauge m "a.count"); false with Invalid_argument _ -> true)

let test_histogram_semantics () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] m "h" in
  check_true "empty quantile is nan" (Float.is_nan (Metrics.Histogram.quantile h 0.5));
  List.iter (Metrics.Histogram.observe h) [ 0.5; 0.7; 5.; 50.; 5000.; Float.nan ];
  Alcotest.(check int) "count includes overflow" 6 (Metrics.Histogram.count h);
  check_float "median bucket bound" 10. (Metrics.Histogram.quantile h 0.5);
  check_float "q=0 lands in first bucket" 1. (Metrics.Histogram.quantile h 0.);
  check_true "q=1 is overflow"
    (Metrics.Histogram.quantile h 1. = Float.infinity);
  check_true "re-registering with other buckets rejected"
    (try ignore (Metrics.histogram ~buckets:[| 2. |] m "h"); false
     with Invalid_argument _ -> true);
  (* Same buckets: get-or-create. *)
  ignore (Metrics.histogram ~buckets:[| 1.; 10.; 100. |] m "h");
  (* The default decade buckets take an exponent-based fast path in
     [bucket_index]; it must agree with the definitional linear scan
     everywhere, in particular at exact powers of ten. *)
  let hd = Metrics.histogram m "hd" in
  let reference x =
    let b = Metrics.default_buckets in
    let n = Array.length b in
    let i = ref 0 in
    while !i < n && not (x <= b.(!i)) do incr i done;
    !i
  in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "bucket_index %.17g" x)
        (reference x)
        (Metrics.Histogram.bucket_index hd x))
    (List.concat_map
       (fun d ->
         let p = 10. ** float_of_int d in
         [ p; p *. (1. +. epsilon_float); p *. 0.999999; p *. 3.16 ])
       [ -13; -12; -7; -1; 0; 1; 3; 4; 5 ]
    @ [ 0.; -1.; Float.nan; Float.infinity; Float.min_float; Float.max_float ])

let test_snapshot_reset_render () =
  let m = Metrics.create () in
  Metrics.Counter.add (Metrics.counter m "z") 3;
  Metrics.Gauge.set (Metrics.gauge m "a") 1.5;
  Metrics.Histogram.observe (Metrics.histogram m "mid") 0.5;
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string))
    "sorted by name" [ "a"; "mid"; "z" ] (List.map fst snap);
  (match List.assoc "z" snap with
  | Metrics.Counter_v 3 -> ()
  | _ -> Alcotest.fail "counter snapshot value");
  (match List.assoc "mid" snap with
  | Metrics.Histogram_v { total = 1; counts; bounds; sum } ->
    Alcotest.(check (float 1e-12)) "sum tracks the observation" 0.5 sum;
    Alcotest.(check int) "overflow bucket added" (Array.length bounds + 1)
      (Array.length counts)
  | _ -> Alcotest.fail "histogram snapshot value");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_true "text render mentions every name"
    (let t = Metrics.render_text snap in
     List.for_all (fun (n, _) -> contains t n) snap);
  (* The JSON render must itself be well-formed. *)
  (match parse_json (Metrics.render_json snap) with
  | Jlist items -> Alcotest.(check int) "one object per instrument" 3 (List.length items)
  | _ -> Alcotest.fail "render_json is not an array");
  Metrics.reset m;
  Alcotest.(check int) "reset counter" 0 (Metrics.Counter.value (Metrics.counter m "z"));
  Alcotest.(check int) "reset histogram" 0
    (Metrics.Histogram.count (Metrics.histogram m "mid"))

let test_histogram_local_merge () =
  (* The Local merge path must be indistinguishable from observing the
     parent directly: same bucket counts, same sum, same quantiles. *)
  let m = Metrics.create () in
  let direct = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] m "direct" in
  let merged = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] m "merged" in
  let values = [ 0.5; 0.7; 5.; 50.; 5000.; 50.; 0.1 ] in
  List.iter (Metrics.Histogram.observe direct) values;
  let l = Metrics.Histogram.Local.create merged in
  List.iter (Metrics.Histogram.Local.observe l) values;
  Alcotest.(check int) "nothing visible before flush" 0
    (Metrics.Histogram.count merged);
  Metrics.Histogram.Local.flush l;
  Alcotest.(check int) "counts merge" (Metrics.Histogram.count direct)
    (Metrics.Histogram.count merged);
  check_float "sum merges too" (Metrics.Histogram.sum direct)
    (Metrics.Histogram.sum merged);
  List.iter
    (fun q ->
      check_float
        (Printf.sprintf "quantile %g agrees" q)
        (Metrics.Histogram.quantile direct q)
        (Metrics.Histogram.quantile merged q))
    [ 0.; 0.25; 0.5; 0.9 ];
  (* flush is idempotent until the next observe... *)
  Metrics.Histogram.Local.flush l;
  Alcotest.(check int) "second flush adds nothing"
    (Metrics.Histogram.count direct)
    (Metrics.Histogram.count merged);
  (* ...and the tally is reusable afterwards. *)
  Metrics.Histogram.Local.observe l 5.;
  Metrics.Histogram.Local.flush l;
  Alcotest.(check int) "reused local merges the new tally"
    (Metrics.Histogram.count direct + 1)
    (Metrics.Histogram.count merged)

let test_prometheus_and_json_line_render () =
  let m = Metrics.create () in
  Metrics.Counter.add (Metrics.counter m "service.requests") 7;
  Metrics.Gauge.set (Metrics.gauge m "service.jain_fairness") 0.75;
  let h = Metrics.histogram ~buckets:[| 0.001; 0.1 |] m "service.latency.full" in
  List.iter (Metrics.Histogram.observe h) [ 0.0005; 0.05; 2. ];
  let snap = Metrics.snapshot m in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let prom = Metrics.render_prometheus snap in
  List.iter
    (fun frag ->
      check_true (Printf.sprintf "prometheus text has %S" frag)
        (contains prom frag))
    [
      "# TYPE ffc_service_requests counter";
      "ffc_service_requests 7";
      "# TYPE ffc_service_jain_fairness gauge";
      "ffc_service_jain_fairness 0.75";
      "# TYPE ffc_service_latency_full histogram";
      "ffc_service_latency_full_bucket{le=\"0.001\"} 1";
      (* cumulative: the 0.1 bucket includes the 0.001 one *)
      "ffc_service_latency_full_bucket{le=\"0.1\"} 2";
      "ffc_service_latency_full_bucket{le=\"+Inf\"} 3";
      "ffc_service_latency_full_count 3";
      "ffc_service_latency_full_sum";
    ];
  (* The one-line render is the pretty render with whitespace squeezed
     out — a single protocol-friendly line, same JSON value. *)
  let line = Metrics.render_json_line snap in
  check_false "render_json_line has no newline"
    (String.contains line '\n');
  match (parse_json line, parse_json (Metrics.render_json snap)) with
  | Jlist a, Jlist b ->
    Alcotest.(check int) "same instrument count" (List.length b)
      (List.length a);
    check_true "same JSON value as render_json" (a = b)
  | _ -> Alcotest.fail "renders are not JSON arrays"

(* ------------------------------------------------------------------ *)
(* Event constructors: every kind parses and carries its fields        *)
(* ------------------------------------------------------------------ *)

let test_event_jsonl_well_formed () =
  let events =
    [
      ("run.start", Event.run_start ~cmd:"exp" ~target:"e9" ~seed:7 ~stride:10 ());
      ("run.end", Event.run_end ~cmd:"exp" ());
      ( "ctrl.step",
        Event.ctrl_step ~step:12 ~residual:1.5e-7 ~rates:[| 0.1; 0.25; 1e-12 |] );
      ("ctrl.outcome", Event.ctrl_outcome ~outcome:"converged" ~steps:187);
      ("sup.attempt", Event.sup_attempt ~attempt:1 ~damping:0.5);
      ( "sup.verdict",
        Event.sup_verdict ~outcome:"diverged" ~attempts:4 ~recovered:false
          ~total_steps:9000 ~min_ratio:0.93 () );
      ("fault.drop", Event.fault_drop ~step:40 ~conn:2);
      ("fault.cut", Event.fault_cut ~step:100 ~gw:1 ~active:true);
      ("desim.delivery", Event.desim_delivery ~time:12.5 ~conn:0 ~delay:0.75);
      ("desim.summary", Event.desim_summary ~conn:3 ~deliveries:250 ~throughput:0.25);
      ("pool.map", Event.pool_map ~tasks:33 ~jobs:4 ~chunk:2);
      ("pool.chunk", Event.pool_chunk ~start:0 ~stop:2 ~domain:1);
    ]
  in
  List.iter
    (fun (kind, line) ->
      check_true (kind ^ " is one line") (not (String.contains line '\n'));
      match obj_field line "ev" with
      | Some (Jstr k) -> Alcotest.(check string) (kind ^ " discriminator") kind k
      | _ -> Alcotest.failf "%s: no ev field in %s" kind line)
    events;
  (* Spot-check payload fields and float round-tripping. *)
  (match obj_field (Event.ctrl_step ~step:3 ~residual:0.1 ~rates:[| 0.30000000000000004 |]) "rates" with
  | Some (Jlist [ Jnum x ]) -> check_float ~tol:0. "rate round-trips" 0.30000000000000004 x
  | _ -> Alcotest.fail "ctrl.step rates field");
  (* Non-finite floats must degrade to null, not break the line. *)
  match obj_field (Event.ctrl_step ~step:0 ~residual:Float.nan ~rates:[||]) "residual" with
  | Some Jnull -> ()
  | _ -> Alcotest.fail "nan residual must render as null"

let test_jsonf_escaping () =
  let nasty = "a\"b\\c\nd\te\r\x01f" in
  match parse_json (Jsonf.string nasty) with
  | Jstr s ->
    Alcotest.(check string) "escape round-trip" "a\"b\\c\nd\te\r\x01f" s
  | _ -> Alcotest.fail "Jsonf.string must produce a JSON string"

(* ------------------------------------------------------------------ *)
(* Sinks and capture                                                   *)
(* ------------------------------------------------------------------ *)

let test_sink_buffer_and_capture () =
  let s = Sink.buffer () in
  Sink.emit s "one";
  let (), captured =
    Sink.capture (fun () ->
        Sink.emit s "inner-a";
        Sink.emit s "inner-b")
  in
  Sink.emit s "two";
  Sink.emit_raw s captured;
  Alcotest.(check string) "capture diverts, flush appends" "one\ntwo\ninner-a\ninner-b\n"
    (Sink.contents s);
  check_false "null sink disabled" (Sink.enabled Sink.null);
  Sink.emit Sink.null "dropped";
  check_true "contents of non-buffer rejected"
    (try ignore (Sink.contents Sink.null); false with Invalid_argument _ -> true)

let test_sink_file_roundtrip () =
  let path = Filename.temp_file "ffc_obs" ".jsonl" in
  let s = Sink.file path in
  Sink.emit s "{\"ev\":\"x\"}";
  Sink.close s;
  Sink.close s;
  (* idempotent *)
  let read = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check string) "file sink writes lines" "{\"ev\":\"x\"}\n" read;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Context: ambient install, hot taps, null-sink allocation            *)
(* ------------------------------------------------------------------ *)

let test_ctx_ambient_and_counters () =
  check_true "no ambient context by default" (Ctx.ambient () = None);
  Ffc_obs.Ctx.incr_controller_steps ();
  (* no-op without a context *)
  let ctx = Ctx.make () in
  Ctx.with_ctx ctx (fun () ->
      Ffc_obs.Ctx.incr_controller_steps ();
      Ffc_obs.Ctx.incr_controller_steps ();
      Ffc_obs.Ctx.add_pool_tasks 5;
      Ffc_obs.Ctx.incr_named "custom.thing");
  check_true "context restored" (Ctx.ambient () = None);
  let m = Ctx.metrics ctx in
  Alcotest.(check int) "hot tap counted" 2
    (Metrics.Counter.value (Metrics.counter m "controller.steps"));
  Alcotest.(check int) "pool tasks counted" 5
    (Metrics.Counter.value (Metrics.counter m "pool.tasks"));
  Alcotest.(check int) "named tap counted" 1
    (Metrics.Counter.value (Metrics.counter m "custom.thing"));
  check_true "tracing off with null sink" (Ctx.with_ctx ctx Ctx.tracing = None);
  check_true "stride must be positive"
    (try ignore (Ctx.make ~stride:0 ()); false with Invalid_argument _ -> true)

let test_null_sink_taps_do_not_allocate () =
  let ctx = Ctx.make () in
  Ctx.with_ctx ctx (fun () ->
      (* Warm up (possible lazy init), then measure. *)
      for _ = 1 to 100 do
        Ffc_obs.Ctx.incr_controller_steps ()
      done;
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Ffc_obs.Ctx.incr_controller_steps ();
        Ffc_obs.Ctx.incr_injector_steps ();
        Ffc_obs.Ctx.incr_desim_deliveries ()
      done;
      let allocated = Gc.minor_words () -. before in
      (* 30k taps; budget covers the Gc.minor_words probes themselves. *)
      check_true
        (Printf.sprintf "null-sink taps allocate nothing (got %.0f words)" allocated)
        (allocated < 100.))

(* ------------------------------------------------------------------ *)
(* Pool: captured task traces flush in task order at any jobs          *)
(* ------------------------------------------------------------------ *)

let test_pool_trace_order () =
  let expected =
    String.concat "" (List.init 40 (fun i -> Printf.sprintf "task %d\n" i))
  in
  List.iter
    (fun jobs ->
      let sink = Sink.buffer () in
      let ctx = Ctx.make ~sink () in
      Ctx.with_ctx ctx (fun () ->
          ignore
            (Ffc_numerics.Pool.parallel_map ~jobs
               (fun i ->
                 (match Ctx.tracing () with
                 | Some c -> Ctx.emit c (Printf.sprintf "task %d" i)
                 | None -> ());
                 i)
               (Array.init 40 Fun.id)));
      Alcotest.(check string)
        (Printf.sprintf "trace in task order at jobs=%d" jobs)
        expected (Sink.contents sink))
    [ 1; 2; 4; 40 ]

let test_pool_sched_events_gated () =
  (* sched off (the default): no pool.* events in the trace. *)
  let sink = Sink.buffer () in
  let ctx = Ctx.make ~sink () in
  Ctx.with_ctx ctx (fun () ->
      ignore (Ffc_numerics.Pool.parallel_map ~jobs:4 (fun i -> i) (Array.init 16 Fun.id)));
  check_false "no pool events without sched"
    (List.exists
       (fun l ->
         match obj_field l "ev" with
         | Some (Jstr ("pool.map" | "pool.chunk")) -> true
         | _ -> false)
       (lines_of (Sink.contents sink)))

(* ------------------------------------------------------------------ *)
(* End-to-end: controller, supervisor, simulator produce valid traces  *)
(* ------------------------------------------------------------------ *)

let run_traced ?(stride = 1) f =
  let sink = Sink.buffer () in
  let ctx = Ctx.make ~sink ~stride () in
  let r = Ctx.with_ctx ctx f in
  (r, lines_of (Sink.contents sink), Ctx.metrics ctx)

let event_kinds lines =
  List.filter_map
    (fun l -> match obj_field l "ev" with Some (Jstr k) -> Some k | _ -> None)
    lines

let test_controller_trace () =
  let open Ffc_topology in
  let open Ffc_core in
  let net = Topologies.single ~n:3 () in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:Scenario.standard_adjuster ~n:3
  in
  let outcome, lines, m =
    run_traced ~stride:10 (fun () -> Controller.run c ~net ~r0:(Array.make 3 0.02))
  in
  check_true "run converged"
    (match outcome with Controller.Converged _ -> true | _ -> false);
  List.iter (fun l -> ignore (parse_json l)) lines;
  let kinds = event_kinds lines in
  check_true "ctrl.step events present" (List.mem "ctrl.step" kinds);
  check_true "ctrl.outcome present" (List.mem "ctrl.outcome" kinds);
  check_true "steps counted"
    (Metrics.Counter.value (Metrics.counter m "controller.steps") > 0);
  Alcotest.(check int) "one run recorded" 1
    (Metrics.Counter.value (Metrics.counter m "controller.runs"))

let test_supervisor_fault_trace () =
  let open Ffc_topology in
  let open Ffc_core in
  let open Ffc_faults in
  let net = Topologies.single ~n:3 () in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:Scenario.standard_adjuster ~n:3
  in
  let plan = Fault.plan ~seed:5 [ Fault.everywhere (Fault.Lossy { p = 0.5 }) ] in
  let v, lines, m =
    run_traced (fun () -> Supervisor.run ~plan c ~net ~r0:(Array.make 3 0.02))
  in
  List.iter (fun l -> ignore (parse_json l)) lines;
  let kinds = event_kinds lines in
  check_true "sup.attempt present" (List.mem "sup.attempt" kinds);
  check_true "sup.verdict present" (List.mem "sup.verdict" kinds);
  check_true "fault.drop present" (List.mem "fault.drop" kinds);
  check_true "injector drops counted"
    (Metrics.Counter.value (Metrics.counter m "injector.drops") > 0);
  check_true "verdict has an outcome" (v.Supervisor.attempts >= 1);
  (* wall-clock must never enter the trace *)
  check_false "no wall_seconds in events"
    (List.exists
       (fun l -> match obj_field l "wall_seconds" with Some _ -> true | None -> false)
       lines)

let test_netsim_trace () =
  let open Ffc_topology in
  let net = Topologies.single ~mu:1. ~n:2 () in
  let _, lines, m =
    run_traced ~stride:100 (fun () ->
        Ffc_desim.Netsim.run ~net ~rates:[| 0.3; 0.3 |]
          ~discipline:Ffc_desim.Netsim.Fs_priority ~seed:3 ~horizon:500. ())
  in
  List.iter (fun l -> ignore (parse_json l)) lines;
  let kinds = event_kinds lines in
  check_true "desim.delivery present" (List.mem "desim.delivery" kinds);
  Alcotest.(check int) "one summary per connection" 2
    (List.length (List.filter (String.equal "desim.summary") kinds));
  check_true "deliveries counted"
    (Metrics.Counter.value (Metrics.counter m "desim.deliveries") > 0);
  check_true "delay histogram populated"
    (Metrics.Histogram.count (Metrics.histogram m "desim.delay") > 0)

(* ------------------------------------------------------------------ *)
(* Determinism: E9 and E25 traces are byte-identical at any --jobs     *)
(* ------------------------------------------------------------------ *)

let trace_of ~jobs f =
  let sink = Sink.buffer () in
  let ctx = Ctx.make ~sink ~stride:50 () in
  let saved = Ffc_numerics.Pool.default_jobs () in
  Ffc_numerics.Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Ffc_numerics.Pool.set_default_jobs saved)
    (fun () -> ignore (Ctx.with_ctx ctx f));
  Sink.contents sink

let test_e9_trace_deterministic () =
  let f () = Ffc_experiments.E09_robustness.compute ~trials:5 () in
  let a = trace_of ~jobs:1 f and b = trace_of ~jobs:4 f in
  check_true "E9 trace non-empty" (String.length a > 0);
  Alcotest.(check string) "E9 trace identical at jobs 1 and 4" a b

let test_e25_trace_deterministic () =
  let f () = Ffc_experiments.E25_stress.compute ~jobs:(Ffc_numerics.Pool.default_jobs ()) () in
  let a = trace_of ~jobs:1 f and b = trace_of ~jobs:4 f in
  check_true "E25 trace non-empty" (String.length a > 0);
  Alcotest.(check string) "E25 trace identical at jobs 1 and 4" a b

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let test_provenance_manifest () =
  let m = Metrics.create () in
  Metrics.Counter.add (Metrics.counter m "controller.steps") 42;
  let prov =
    Provenance.collect ~command:"exp" ~subject:"e9"
      ~adjusters:[ "additive:0.1:0.5" ]
      ~seeds:[ ("fault", 7) ] ~faults:[ "lossy(p=0.2)@all" ] ~jobs:4 ~stride:10 ()
  in
  let doc = Provenance.to_json prov ~metrics:(Some (Metrics.snapshot m)) in
  match parse_json doc with
  | Jobj fields ->
    (match List.assoc_opt "command" fields with
    | Some (Jstr "exp") -> ()
    | _ -> Alcotest.fail "command field");
    (match List.assoc_opt "jobs" fields with
    | Some (Jnum 4.) -> ()
    | _ -> Alcotest.fail "jobs field");
    (match List.assoc_opt "seeds" fields with
    | Some (Jobj [ ("fault", Jnum 7.) ]) -> ()
    | _ -> Alcotest.fail "seeds field");
    (match List.assoc_opt "metrics" fields with
    | Some (Jlist (_ :: _)) -> ()
    | _ -> Alcotest.fail "metrics field")
  | _ -> Alcotest.fail "manifest is not a JSON object"

let suites =
  [
    ( "obs",
      [
        case "metrics: counter and gauge semantics" test_counter_semantics;
        case "metrics: histogram semantics" test_histogram_semantics;
        case "metrics: snapshot, reset, render" test_snapshot_reset_render;
        case "metrics: histogram local merge path" test_histogram_local_merge;
        case "metrics: prometheus and one-line JSON renders"
          test_prometheus_and_json_line_render;
        case "events: every kind is valid JSONL" test_event_jsonl_well_formed;
        case "events: JSON string escaping" test_jsonf_escaping;
        case "sink: buffer and capture" test_sink_buffer_and_capture;
        case "sink: file round-trip" test_sink_file_roundtrip;
        case "ctx: ambient install and hot taps" test_ctx_ambient_and_counters;
        case "ctx: null-sink taps allocate nothing" test_null_sink_taps_do_not_allocate;
        case "pool: trace flushes in task order" test_pool_trace_order;
        case "pool: sched events are opt-in" test_pool_sched_events_gated;
        case "controller: traced run" test_controller_trace;
        case "supervisor: traced faulted run" test_supervisor_fault_trace;
        case "netsim: traced simulation" test_netsim_trace;
        case "determinism: E9 trace vs jobs" test_e9_trace_deterministic;
        case "determinism: E25 trace vs jobs" test_e25_trace_deterministic;
        case "provenance: manifest is valid JSON" test_provenance_manifest;
      ] );
  ]
