open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core
open Test_util

let signal = Signal.linear_fractional

let test_criterion_fs_holds () =
  check_true "FS satisfies Theorem 5 criterion"
    (Robustness.criterion_holds Service.fair_share ~mu:2. ~rates:[| 0.1; 0.5; 0.9 |])

let test_criterion_fifo_fails () =
  check_false "FIFO violates Theorem 5 criterion"
    (Robustness.criterion_holds Service.fifo ~mu:3. ~rates:[| 0.05; 2.5 |])

let test_violation_rates () =
  let rng = Rng.create 1234 in
  let fs_rate =
    Robustness.criterion_violation_rate Service.fair_share ~rng ~n:4 ~mu:2. ~trials:300
  in
  check_float "FS never violates" 0. fs_rate;
  let rng = Rng.create 1234 in
  let fifo_rate =
    Robustness.criterion_violation_rate Service.fifo ~rng ~n:4 ~mu:2. ~trials:300
  in
  check_true "FIFO violates often" (fifo_rate > 0.2)

let test_reservation_rate () =
  (* b_ss = 0.5, B = C/(1+C): rho_ss = 1/2; mu = 2, n = 4: baseline 0.25. *)
  check_float ~tol:1e-12 "baseline" 0.25
    (Robustness.reservation_rate ~signal ~b_ss:0.5 ~mu:2. ~n:4)

let test_baselines_multi_gateway () =
  (* The binding slice is the smallest mu^a/N^a along the path. *)
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "thin"; mu = 1.; latency = 0. };
          { Network.gw_name = "fat"; mu = 10.; latency = 0. };
        |]
      ~connections:
        [|
          { Network.conn_name = "both"; path = [ 0; 1 ] };
          { Network.conn_name = "thin-only"; path = [ 0 ] };
          { Network.conn_name = "fat-only"; path = [ 1 ] };
        |]
  in
  let b = Robustness.baselines ~signal ~b_ss:[| 0.5; 0.5; 0.5 |] ~net in
  (* thin: mu/N = 1/2 -> baseline 0.25; fat: 10/2 = 5 -> baseline 2.5. *)
  check_vec ~tol:1e-12 "per-connection baselines" [| 0.25; 0.25; 2.5 |] b

let test_heterogeneous_baselines () =
  let net = Topologies.single ~n:2 () in
  let b = Robustness.baselines ~signal ~b_ss:[| 0.3; 0.7 |] ~net in
  (* rho_ss(0.3) = 0.3, rho_ss(0.7) = 0.7 (B = C/(1+C) makes them equal);
     slice mu/N = 0.5. *)
  check_vec ~tol:1e-12 "per-beta baselines" [| 0.15; 0.35 |] b

let test_is_robust_outcome () =
  let baselines = [| 0.15; 0.35 |] in
  check_true "meets baselines"
    (Robustness.is_robust_outcome ~baselines [| 0.15; 0.55 |]);
  check_false "shortfall detected"
    (Robustness.is_robust_outcome ~baselines [| 0.064; 0.63 |]);
  check_vec ~tol:1e-9 "shortfalls" [| 0.086; 0. |]
    (Robustness.shortfalls ~baselines ~steady:[| 0.064; 0.63 |])

(* End-to-end: the Section 3.4 heterogeneity scenario across the design
   matrix.  timid beta = 0.3, greedy beta = 0.7 sharing one gateway. *)

let run_heterogeneous config =
  let net = Topologies.single ~n:2 () in
  let adjusters = [| Scenario.timid_adjuster; Scenario.greedy_adjuster |] in
  let c = Controller.create ~config ~adjusters in
  match Controller.run c ~net ~r0:[| 0.2; 0.2 |] with
  | Controller.Converged { steady; _ } ->
    let baselines = Robustness.baselines ~signal ~b_ss:[| 0.3; 0.7 |] ~net in
    (steady, Robustness.is_robust_outcome ~baselines steady)
  | _ -> Alcotest.fail "heterogeneous scenario should converge"

let test_aggregate_starves () =
  let steady, robust = run_heterogeneous Feedback.aggregate_fifo in
  check_float ~tol:1e-7 "timid shut down" 0. steady.(0);
  check_false "aggregate not robust" robust

let test_individual_fifo_not_robust_but_nonzero () =
  let steady, robust = run_heterogeneous Feedback.individual_fifo in
  check_true "timid gets a nonzero share" (steady.(0) > 0.01);
  (* Analytic steady state: rho_1 = (3/14)*(0.3) = 9/140. *)
  check_float ~tol:1e-5 "timid rate below baseline" (9. /. 140.) steady.(0);
  check_false "individual+FIFO not robust" robust

let test_individual_fs_robust () =
  let steady, robust = run_heterogeneous Feedback.individual_fair_share in
  (* Analytic: timid at exactly its baseline 0.15, greedy at 0.55. *)
  check_vec ~tol:1e-5 "steady allocation" [| 0.15; 0.55 |] steady;
  check_true "individual+FS robust" robust

let test_fs_delay_advantage () =
  (* Section 3.4's closing claim: under robust individual+FS the timid
     connection's queueing delay beats the reservation baseline's
     (an M/M/1 at rate mu/N) by about a factor N. *)
  let mu = 1. and n = 2 in
  let rates = [| 0.15; 0.55 |] in
  let w_fs = (Service.sojourn_times Service.fair_share ~mu rates).(0) in
  (* Reservation: private server at mu/N serving rate 0.15. *)
  let w_resv = Mm1.sojourn_time ~mu:(mu /. float_of_int n) ~rate:0.15 in
  check_true "FS delay at least 1.9x better" (w_resv /. w_fs > 1.9)

let prop_fs_criterion_random =
  prop "Theorem 5 criterion holds for FS on random vectors" ~count:100
    QCheck2.Gen.(pair (array_size (int_range 1 6) (float_range 0. 2.)) (float_range 0.5 4.))
    (fun (rates, mu) -> Robustness.criterion_holds Service.fair_share ~mu ~rates)

let test_baselines_masked () =
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "thin"; mu = 1.; latency = 0. };
          { Network.gw_name = "fat"; mu = 10.; latency = 0. };
        |]
      ~connections:
        [|
          { Network.conn_name = "both"; path = [ 0; 1 ] };
          { Network.conn_name = "thin-only"; path = [ 0 ] };
          { Network.conn_name = "fat-only"; path = [ 1 ] };
        |]
  in
  let b_ss = [| 0.5; 0.5; 0.5 |] in
  (* An all-true mask is exactly [baselines] — bit-for-bit. *)
  check_true "all-true mask = baselines"
    (Robustness.baselines_masked ~signal ~b_ss ~net
       ~active:[| true; true; true |]
    = Robustness.baselines ~signal ~b_ss ~net);
  (* Masking out "thin-only" halves the thin gateway's fan-in, so the
     surviving sharer's reservation doubles; the inactive slot owes
     nothing (baseline 0). *)
  let m =
    Robustness.baselines_masked ~signal ~b_ss ~net
      ~active:[| true; false; true |]
  in
  check_vec ~tol:1e-12 "fan-in counts only active peers" [| 0.5; 0.; 2.5 |] m

let suites =
  [
    ( "core.robustness",
      [
        case "criterion holds for FS" test_criterion_fs_holds;
        case "criterion fails for FIFO" test_criterion_fifo_fails;
        case "sampled violation rates" test_violation_rates;
        case "reservation rate" test_reservation_rate;
        case "multi-gateway baselines" test_baselines_multi_gateway;
        case "heterogeneous baselines" test_heterogeneous_baselines;
        case "masked baselines follow the active fan-in" test_baselines_masked;
        case "robust-outcome predicate" test_is_robust_outcome;
        case "aggregate starves timid (paper 3.4)" test_aggregate_starves;
        case "individual+FIFO: nonzero but not robust"
          test_individual_fifo_not_robust_but_nonzero;
        case "individual+FS: robust (Theorem 5)" test_individual_fs_robust;
        case "FS delay advantage over reservations" test_fs_delay_advantage;
        prop_fs_criterion_random;
      ] );
  ]
