(* Single alcotest runner aggregating every module's suites.  Each
   [Test_*] module exports [suites : (string * unit Alcotest.test_case list) list]. *)

let () =
  Alcotest.run "ffc"
    (List.concat
       [
         Test_rng.suites;
         Test_pool.suites;
         Test_vec.suites;
         Test_mat.suites;
         Test_eigen.suites;
         Test_rootfind.suites;
         Test_stats.suites;
         Test_dynamics.suites;
         Test_ascii_plot.suites;
         Test_queueing.suites;
         Test_topology.suites;
         Test_desim.suites;
         Test_signal.suites;
         Test_congestion.suites;
         Test_rate_adjust.suites;
         Test_controller.suites;
         Test_steady_state.suites;
         Test_jacobian.suites;
         Test_sparse.suites;
         Test_fairness.suites;
         Test_robustness.suites;
         Test_faults.suites;
         Test_analysis.suites;
         Test_weighted_fs.suites;
         Test_closedloop.suites;
         Test_game.suites;
         Test_window.suites;
         Test_transient.suites;
         Test_exp_common.suites;
         Test_experiments.suites;
         Test_obs.suites;
         Test_cache.suites;
         Test_service.suites;
         Test_span.suites;
       ])
