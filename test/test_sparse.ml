(* The sparse structure-aware Jacobian machinery: CSR matrices and the
   zero-dimension contract, the Sherman-Morrison rank-1 solve, the
   route-incidence pattern and its probe groups, grouped finite
   differences against the dense path (bit for bit, at every jobs
   count), incremental churn updates against from-scratch rebuilds, the
   finite-difference domain-guard regression, struct_tol threading, and
   warm-cache replay of the new tiers. *)

open Ffc_numerics
open Ffc_topology
open Ffc_core
open Test_util

let bits = Int64.bits_of_float

let check_bits_vec msg (a : Vec.t) (b : Vec.t) =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: dimension mismatch %d vs %d" msg (Array.length a)
      (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: component %d: %h vs %h" msg i x b.(i))
    a

let check_bits_mat msg (a : Mat.t) (b : Mat.t) =
  check_bits_vec msg (Mat.to_flat a) (Mat.to_flat b)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Mat.Sparse                                                          *)
(* ------------------------------------------------------------------ *)

let sample_csr () =
  (* [[1 0 2]; [0 0 0]; [0 3 0]] *)
  Mat.Sparse.create ~rows:3 ~cols:3 ~row_ptr:[| 0; 2; 2; 3 |]
    ~col_idx:[| 0; 2; 1 |] ~values:[| 1.; 2.; 3. |]

let test_sparse_create_validation () =
  let ok = sample_csr () in
  check_true "valid assembly" (Mat.Sparse.nnz ok = 3);
  check_true "row_ptr length"
    (raises_invalid (fun () ->
         Mat.Sparse.create ~rows:3 ~cols:3 ~row_ptr:[| 0; 2; 3 |]
           ~col_idx:[| 0; 2; 1 |] ~values:[| 1.; 2.; 3. |]));
  check_true "row_ptr decreasing"
    (raises_invalid (fun () ->
         Mat.Sparse.create ~rows:3 ~cols:3 ~row_ptr:[| 0; 2; 1; 3 |]
           ~col_idx:[| 0; 2; 1 |] ~values:[| 1.; 2.; 3. |]));
  check_true "row_ptr end mismatch"
    (raises_invalid (fun () ->
         Mat.Sparse.create ~rows:3 ~cols:3 ~row_ptr:[| 0; 2; 2; 2 |]
           ~col_idx:[| 0; 2; 1 |] ~values:[| 1.; 2.; 3. |]));
  check_true "column out of range"
    (raises_invalid (fun () ->
         Mat.Sparse.create ~rows:3 ~cols:3 ~row_ptr:[| 0; 2; 2; 3 |]
           ~col_idx:[| 0; 3; 1 |] ~values:[| 1.; 2.; 3. |]));
  check_true "columns not strictly increasing in a row"
    (raises_invalid (fun () ->
         Mat.Sparse.create ~rows:3 ~cols:3 ~row_ptr:[| 0; 2; 2; 3 |]
           ~col_idx:[| 2; 2; 1 |] ~values:[| 1.; 2.; 3. |]));
  check_true "negative dimensions"
    (raises_invalid (fun () ->
         Mat.Sparse.create ~rows:(-1) ~cols:3 ~row_ptr:[| 0 |] ~col_idx:[||]
           ~values:[||]))

let test_sparse_accessors () =
  let s = sample_csr () in
  check_float "stored entry" 2. (Mat.Sparse.get s 0 2);
  check_float "off-pattern entry reads 0" 0. (Mat.Sparse.get s 1 1);
  let seen = ref [] in
  Mat.Sparse.iter_row s 0 (fun j v -> seen := (j, v) :: !seen);
  Alcotest.(check (list (pair int (float 0.))))
    "iter_row in column order" [ (0, 1.); (2, 2.) ] (List.rev !seen);
  check_vec "diagonal pads off-pattern with 0" [| 1.; 0.; 0. |]
    (Mat.Sparse.diagonal s);
  let d = Mat.Sparse.to_dense s in
  check_bits_mat "to_dense"
    (Mat.of_arrays [| [| 1.; 0.; 2. |]; [| 0.; 0.; 0. |]; [| 0.; 3.; 0. |] |])
    d;
  check_bits_vec "mul_vec matches dense"
    (Mat.mul_vec d [| 1.; 10.; 100. |])
    (Mat.Sparse.mul_vec s [| 1.; 10.; 100. |]);
  let c = Mat.Sparse.copy s in
  check_true "copy equal" (Mat.Sparse.equal s c);
  Mat.Sparse.set_existing c 2 1 7.;
  check_false "equal is value-sensitive" (Mat.Sparse.equal s c);
  check_float "set_existing wrote through" 7. (Mat.Sparse.get c 2 1);
  check_float "original untouched" 3. (Mat.Sparse.get s 2 1);
  check_true "set_existing outside pattern raises"
    (raises_invalid (fun () -> Mat.Sparse.set_existing c 1 1 5.))

let test_sparse_of_dense_pattern () =
  let d = Mat.of_arrays [| [| 1.; 4. |]; [| 5.; 6. |] |] in
  (* Bare of_dense keeps structural nonzeros only. *)
  let z = Mat.Sparse.of_dense (Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 6. |] |]) in
  check_true "bare of_dense drops zeros" (Mat.Sparse.nnz z = 2);
  (* With a pattern, inside entries are stored even when 0 and outside
     entries are dropped. *)
  let p = Mat.Sparse.of_dense ~pattern:[| [| 0 |]; [| 0; 1 |] |] d in
  check_true "pattern taken verbatim" (Mat.Sparse.nnz p = 3);
  check_float "outside entry dropped" 0. (Mat.Sparse.get p 0 1);
  let q =
    Mat.Sparse.of_dense ~pattern:[| [| 0; 1 |]; [||] |]
      (Mat.of_arrays [| [| 0.; 0. |]; [| 5.; 6. |] |])
  in
  check_true "explicit zeros stored" (Mat.Sparse.nnz q = 2);
  check_float "masked row reads 0" 0. (Mat.Sparse.get q 1 0)

let test_zero_dim_contract () =
  let zero = Mat.of_arrays [||] in
  check_true "of_arrays [||] is 0x0" (Mat.rows zero = 0 && Mat.cols zero = 0);
  check_true "create 0 5" (Mat.cols (Mat.create 0 5) = 5);
  check_true "create 5 0" (Mat.rows (Mat.create 5 0) = 5);
  check_true "of_flat 0 rows"
    (Mat.cols (Mat.of_flat ~rows:0 ~cols:3 [||]) = 3);
  check_true "negative rows raise" (raises_invalid (fun () -> Mat.create (-1) 2));
  let s =
    Mat.Sparse.create ~rows:0 ~cols:0 ~row_ptr:[| 0 |] ~col_idx:[||] ~values:[||]
  in
  check_true "0x0 CSR" (Mat.Sparse.rows s = 0 && Mat.Sparse.nnz s = 0);
  let e = Mat.Sparse.of_dense (Mat.create 0 4) in
  check_true "of_dense on 0x4" (Mat.Sparse.cols e = 4);
  check_true "to_dense round-trips shape"
    (Mat.rows (Mat.Sparse.to_dense e) = 0 && Mat.cols (Mat.Sparse.to_dense e) = 4)

let test_solve_rank1 () =
  let rng = Rng.create 41 in
  for trial = 1 to 10 do
    let n = 2 + Rng.int rng 5 in
    (* Diagonally dominant base keeps both solves well conditioned. *)
    let a =
      Mat.init n n (fun i j ->
          (if i = j then 4. else 0.) +. Rng.range rng (-0.5) 0.5)
    in
    let u = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
    let v = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
    let b = Array.init n (fun _ -> Rng.range rng (-1.) 1.) in
    let perturbed =
      Mat.init n n (fun i j -> Mat.get a i j +. (u.(i) *. v.(j)))
    in
    match (Mat.solve_rank1 a ~u ~v b, Mat.solve perturbed b) with
    | Some x, Some y ->
      check_vec ~tol:1e-8
        (Printf.sprintf "trial %d: Sherman-Morrison = direct solve" trial)
        y x
    | _ -> Alcotest.failf "trial %d: both solves should succeed" trial
  done;
  (* Singular base matrix. *)
  check_true "singular base -> None"
    (Mat.solve_rank1 (Mat.create 2 2) ~u:[| 1.; 0. |] ~v:[| 1.; 0. |]
       [| 1.; 1. |]
    = None);
  (* Update that makes the system singular: 1 + v^T A^-1 u = 0. *)
  let id = Mat.init 2 2 (fun i j -> if i = j then 1. else 0.) in
  check_true "singular update -> None"
    (Mat.solve_rank1 id ~u:[| -1.; 0. |] ~v:[| 1.; 0. |] [| 1.; 1. |] = None)

(* ------------------------------------------------------------------ *)
(* Finite-difference domain guard (the bugfix)                         *)
(* ------------------------------------------------------------------ *)

let test_backward_guard_regression () =
  (* f(x) = sqrt x is defined only for x >= 0.  At x = 0 an unguarded
     Backward probe evaluates f(-h) = nan; the guard must fall back to a
     Forward probe, exactly as Central always has. *)
  let f v = Array.map sqrt v in
  let at = [| 0.; 0.25 |] in
  List.iter
    (fun (name, mode) ->
      let j = Jacobian.numeric ~mode f ~at in
      check_true (name ^ ": all entries finite")
        (Array.for_all Float.is_finite (Mat.to_flat j));
      check_float_rel ~tol:1e-5 (name ^ ": interior derivative intact") 1.
        (Mat.get j 1 1))
    [ ("backward", Jacobian.Backward); ("central", Jacobian.Central) ];
  (* End to end: a controller linearized at a point with a zero rate must
     produce a finite DF in every mode (rates are a non-negative domain;
     the r - h probe used to escape it). *)
  let n = 3 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:(Rate_adjust.additive ~eta:0.1 ~beta:0.5)
      ~n
  in
  let at = [| 0.; 0.1; 0.2 |] in
  List.iter
    (fun mode ->
      let df = Jacobian.of_controller ~mode c ~net ~at in
      check_true "controller DF finite at zero rate"
        (Array.for_all Float.is_finite (Mat.to_flat df)))
    [ Jacobian.Backward; Jacobian.Central; Jacobian.Forward ]

(* ------------------------------------------------------------------ *)
(* Route-incidence pattern                                             *)
(* ------------------------------------------------------------------ *)

let test_pattern_multi_parking_lot () =
  let lots = 3 and hops = 2 in
  let net = Topologies.multi_parking_lot ~lots ~hops () in
  let n = Network.num_connections net in
  check_true "connection count" (n = lots * (hops + 1));
  let p = Sparsity.of_network net in
  (* Per lot: the long flow couples to everyone (hops+1 entries); each
     cross flow couples to itself and the long flow (2 entries). *)
  check_true "nnz" (Sparsity.nnz p = lots * (hops + 1 + (2 * hops)));
  check_true "probe groups = hops + 1"
    (Array.length (Sparsity.groups p) = hops + 1);
  (* Grouped columns must have pairwise disjoint supports — the property
     that makes a shared probe alias-free. *)
  let support = Sparsity.supports p in
  Array.iter
    (fun group ->
      let seen = Array.make n false in
      Array.iter
        (fun j ->
          Array.iter
            (fun i ->
              check_false "support overlap inside a probe group" seen.(i);
              seen.(i) <- true)
            support.(j))
        group)
    (Sparsity.groups p);
  (* Every column appears in exactly one group. *)
  let count = Array.make n 0 in
  Array.iter
    (fun g -> Array.iter (fun j -> count.(j) <- count.(j) + 1) g)
    (Sparsity.groups p);
  check_true "groups partition the columns" (Array.for_all (( = ) 1) count)

let test_pattern_dense_fallback () =
  (* Every chain connection crosses every gateway: the pattern is full
     and the coloring must fall back to one column per group. *)
  let net = Topologies.chain ~hops:2 ~conns:6 () in
  let p = Sparsity.of_network net in
  check_true "chain pattern is full" (Sparsity.nnz p = 36);
  check_float "density 1" 1. (Sparsity.density p);
  check_true "fallback: singleton groups"
    (Array.length (Sparsity.groups p) = 6
    && Array.for_all (fun g -> Array.length g = 1) (Sparsity.groups p))

(* ------------------------------------------------------------------ *)
(* Grouped probing == dense probing, bit for bit                       *)
(* ------------------------------------------------------------------ *)

let churn_controller n =
  Controller.homogeneous ~config:Feedback.individual_fair_share
    ~adjuster:(Rate_adjust.additive ~eta:0.1 ~beta:0.5)
    ~n

let distinct_point n =
  let scale = 0.5 /. (float_of_int n *. float_of_int (n + 1) /. 2.) in
  Array.init n (fun i -> scale *. float_of_int (i + 1))

let fd_topologies =
  [
    ("chain", Topologies.chain ~hops:2 ~conns:6 ());
    ("star", Topologies.star ~legs:5 ());
    ("dumbbell", Topologies.dumbbell ~left:3 ~right:4 ());
    ("parking lot", Topologies.parking_lot ~hops:4 ());
    ("multi parking lot", Topologies.multi_parking_lot ~lots:3 ~hops:3 ());
  ]

let test_grouped_fd_bit_identical () =
  List.iter
    (fun (name, net) ->
      let n = Network.num_connections net in
      let c = churn_controller n in
      let at = distinct_point n in
      let pattern = Sparsity.of_network net in
      let f r = Controller.step c ~net r in
      List.iter
        (fun (mname, mode) ->
          List.iter
            (fun jobs ->
              let dense = Jacobian.numeric ~jobs ~mode f ~at in
              let sparse = Jacobian.numeric_sparse ~jobs ~mode f ~pattern ~at in
              check_bits_mat
                (Printf.sprintf "%s, %s, jobs=%d: sparse == dense" name mname
                   jobs)
                dense
                (Mat.Sparse.to_dense sparse))
            [ 1; 8 ])
        [
          ("central", Jacobian.Central);
          ("forward", Jacobian.Forward);
          ("backward", Jacobian.Backward);
        ];
      (* The cached controller entry points agree too (of_controller picks
         the sparse or dense path from the pattern's density). *)
      check_bits_mat
        (name ^ ": of_controller == of_controller_sparse")
        (Jacobian.of_controller c ~net ~at)
        (Mat.Sparse.to_dense (Jacobian.of_controller_sparse c ~net ~at)))
    fd_topologies

(* ------------------------------------------------------------------ *)
(* Incremental updates == from-scratch rebuilds                        *)
(* ------------------------------------------------------------------ *)

let test_update_flow_random_churn () =
  let net = Topologies.multi_parking_lot ~lots:4 ~hops:2 () in
  let n = Network.num_connections net in
  let c = churn_controller n in
  let rng = Rng.create 73 in
  let at = ref (distinct_point n) in
  let prev = ref (Jacobian.of_controller_sparse c ~net ~at:!at) in
  (* No-op churn first: same point, the update must return prev's bits. *)
  check_true "empty churn returns the same matrix"
    (Mat.Sparse.equal !prev
       (Jacobian.update_flow c ~net ~prev:!prev ~prev_at:!at ~at:!at));
  for step = 1 to 12 do
    (* Perturb 1-3 random coordinates, occasionally down to 0 (a leave). *)
    let next = Array.copy !at in
    for _ = 0 to Rng.int rng 3 do
      let j = Rng.int rng n in
      next.(j) <-
        (if Rng.int rng 5 = 0 then 0. else Rng.range rng 0.001 0.05)
    done;
    let upd = Jacobian.update_flow c ~net ~prev:!prev ~prev_at:!at ~at:next in
    let full = Jacobian.of_controller_sparse c ~net ~at:next in
    check_true
      (Printf.sprintf "step %d: update == rebuild, bit for bit" step)
      (Mat.Sparse.equal upd full);
    let upd8 =
      Jacobian.update_flow ~jobs:8 c ~net ~prev:!prev ~prev_at:!at ~at:next
    in
    check_true
      (Printf.sprintf "step %d: jobs=8 bit-identical" step)
      (Mat.Sparse.equal upd upd8);
    at := next;
    prev := upd
  done;
  (* A mismatched prev must be rejected, not silently patched. *)
  let other = Topologies.multi_parking_lot ~lots:2 ~hops:2 () in
  let m = Network.num_connections other in
  let bad = Jacobian.of_controller_sparse (churn_controller m) ~net:other
      ~at:(distinct_point m)
  in
  check_true "wrong-pattern prev raises"
    (raises_invalid (fun () ->
         Jacobian.update_flow c ~net ~prev:bad ~prev_at:(distinct_point m)
           ~at:!at))

let test_update_fair_random_churn () =
  let net = Topologies.multi_parking_lot ~lots:4 ~hops:2 () in
  let n = Network.num_connections net in
  let signal = Signal.linear_fractional and b_ss = 0.5 in
  (* All-true mask is the plain fair solve, bit for bit. *)
  let all = Array.make n true in
  check_bits_vec "all-true mask == fair"
    (Steady_state.fair ~signal ~b_ss ~net)
    (Steady_state.fair_masked ~signal ~b_ss ~net ~active:all);
  let rng = Rng.create 57 in
  let active = ref (Array.copy all) in
  let prev = ref (Steady_state.fair_masked ~signal ~b_ss ~net ~active:!active) in
  for step = 1 to 20 do
    let mask = Array.copy !active in
    let j = Rng.int rng n in
    mask.(j) <- not mask.(j);
    if Array.exists Fun.id mask then begin
      let inc =
        Steady_state.update_fair ~signal ~b_ss ~net ~prev:!prev
          ~prev_active:!active ~active:mask
      in
      let full = Steady_state.fair_masked ~signal ~b_ss ~net ~active:mask in
      check_bits_vec
        (Printf.sprintf "step %d: update_fair == fair_masked" step)
        full inc;
      check_true
        (Printf.sprintf "step %d: inactive rates are 0" step)
        (Array.for_all2 (fun a r -> a || r = 0.) mask inc);
      active := mask;
      prev := inc
    end
  done

(* ------------------------------------------------------------------ *)
(* Partial evaluation (the kernel behind the update's cost model)      *)
(* ------------------------------------------------------------------ *)

let test_map_rows_matches_step () =
  let net = Topologies.multi_parking_lot ~lots:3 ~hops:2 () in
  let n = Network.num_connections net in
  let c = churn_controller n in
  let rates = distinct_point n in
  let whole = Controller.step c ~net rates in
  let everything = Controller.map_rows c ~net ~rows:(Array.init n Fun.id) rates in
  check_bits_vec "all rows == step" whole everything;
  let rows = [| 0; 2; 5 |] in
  let partial = Controller.map_rows c ~net ~rows rates in
  Array.iteri
    (fun i v ->
      if Array.exists (( = ) i) rows then
        check_true
          (Printf.sprintf "row %d matches the full step" i)
          (bits v = bits whole.(i))
      else check_float (Printf.sprintf "row %d untouched" i) 0. v)
    partial

(* ------------------------------------------------------------------ *)
(* struct_tol threading (the second bugfix)                            *)
(* ------------------------------------------------------------------ *)

let test_struct_tol_threading () =
  (* Triangular only up to 1e-5 noise: with struct_tol the diagonal read
     must fire and return exactly 0.5; the dropped-argument bug silently
     fell back to exact-zero detection (QR, != 0.5 in the last bits). *)
  let m = Mat.of_arrays [| [| 0.5; 1e-5 |]; [| 1e-5; 0.25 |] |] in
  check_true "spectral_radius threads struct_tol"
    (Jacobian.spectral_radius ~struct_tol:1e-4 m = 0.5);
  check_true "systemically_stable threads struct_tol"
    (Jacobian.systemically_stable ~struct_tol:1e-4 m);
  let s = Mat.Sparse.of_dense m in
  check_true "sparse radius threads struct_tol"
    (Jacobian.spectral_radius_sparse ~struct_tol:1e-4 s = 0.5);
  check_true "incremental radius threads struct_tol"
    (Jacobian.spectral_radius_incremental ~struct_tol:1e-4 s = 0.5);
  (* Default behavior (exact zeros) is unchanged: still correct, just
     through the iterative path. *)
  check_float ~tol:1e-8 "default stays on the exact-zero path" 0.5
    (Jacobian.spectral_radius m)

(* ------------------------------------------------------------------ *)
(* Sparse eigensolvers                                                 *)
(* ------------------------------------------------------------------ *)

let test_eigen_sparse () =
  (* A permuted triangular matrix: the CSR structural path must find the
     same order and diagonal as the dense one. *)
  let d =
    Mat.of_arrays
      [| [| 0.3; 0.; 0.9 |]; [| 0.4; 0.2; 0.7 |]; [| 0.; 0.; 0.5 |] |]
  in
  let s = Mat.Sparse.of_dense d in
  check_true "triangular order found" (Eigen.triangular_order_sparse s <> None);
  (match Eigen.structural_eigenvalues_sparse s with
  | None -> Alcotest.fail "structural diagonal expected"
  | Some diag ->
    let sorted = Array.copy diag in
    Array.sort Float.compare sorted;
    check_vec "structural diagonal" [| 0.2; 0.3; 0.5 |] sorted);
  check_float "sparse radius = dense radius" (Eigen.spectral_radius d)
    (Eigen.spectral_radius_sparse s);
  let moduli ev =
    let ms = Array.map Complex.norm ev in
    Array.sort Float.compare ms;
    ms
  in
  check_vec ~tol:1e-9 "sparse spectrum = dense spectrum"
    (moduli (Eigen.eigenvalues d))
    (moduli (Eigen.eigenvalues_sparse s));
  (* Power iteration with deflation: on diag(2, 1), deflating the
     dominant eigenvector must surface the second eigenvalue. *)
  let a = Mat.Sparse.of_dense (Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 1. |] |]) in
  (match Eigen.power_iteration_sparse a with
  | None -> Alcotest.fail "power iteration should converge"
  | Some (lam, v) ->
    check_float ~tol:1e-7 "dominant eigenvalue" 2. lam;
    check_true "dominant eigenvector along e1"
      (Float.abs v.(0) > 0.99 && Float.abs v.(1) < 0.01);
    match Eigen.power_iteration_sparse ~deflate:v a with
    | None -> Alcotest.fail "deflated iteration should converge"
    | Some (lam2, _) ->
      check_float ~tol:1e-6 "deflated second eigenvalue" 1. lam2)

(* ------------------------------------------------------------------ *)
(* Warm-cache replay of the new tiers                                  *)
(* ------------------------------------------------------------------ *)

let test_cache_replay_new_tiers () =
  let open Ffc_cache in
  let dir = Filename.temp_dir "ffc-sparse-cache-test" "" in
  let c = Cache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      Store.clear (Cache.store c);
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let net = Topologies.multi_parking_lot ~lots:3 ~hops:2 () in
      let n = Network.num_connections net in
      let ctrl = churn_controller n in
      let signal = Signal.linear_fractional and b_ss = 0.5 in
      let at = distinct_point n in
      let at' = Array.copy at in
      at'.(0) <- at'.(0) *. 1.5;
      let active = Array.make n true in
      let mask = Array.copy active in
      mask.(1) <- false;
      let cold =
        Cache.with_cache c (fun () ->
            let sp = Jacobian.of_controller_sparse ctrl ~net ~at in
            let upd =
              Jacobian.update_flow ctrl ~net ~prev:sp ~prev_at:at ~at:at'
            in
            let ss = Steady_state.fair_masked ~signal ~b_ss ~net ~active in
            let inc =
              Steady_state.update_fair ~signal ~b_ss ~net ~prev:ss
                ~prev_active:active ~active:mask
            in
            let ev = Jacobian.eigenvalues_sparse sp in
            (sp, upd, ss, inc, ev))
      in
      Cache.reset c;
      let warm =
        Cache.with_cache c (fun () ->
            let sp = Jacobian.of_controller_sparse ctrl ~net ~at in
            let upd =
              Jacobian.update_flow ctrl ~net ~prev:sp ~prev_at:at ~at:at'
            in
            let ss = Steady_state.fair_masked ~signal ~b_ss ~net ~active in
            let inc =
              Steady_state.update_fair ~signal ~b_ss ~net ~prev:ss
                ~prev_active:active ~active:mask
            in
            let ev = Jacobian.eigenvalues_sparse sp in
            (sp, upd, ss, inc, ev))
      in
      let k = Cache.counters c in
      check_true "warm replay is all hits" (k.Cache.misses = 0 && k.Cache.hits > 0);
      let csp, cupd, css, cinc, cev = cold in
      let wsp, wupd, wss, winc, wev = warm in
      check_true "jac.sparse replay bit-identical" (Mat.Sparse.equal csp wsp);
      check_true "jac.update replay bit-identical" (Mat.Sparse.equal cupd wupd);
      check_bits_vec "steady.fair_masked replay" css wss;
      check_bits_vec "ss.update replay" cinc winc;
      check_true "eigen.spectrum.sparse replay"
        (Array.for_all2
           (fun a b ->
             bits a.Complex.re = bits b.Complex.re
             && bits a.Complex.im = bits b.Complex.im)
           cev wev))

let suites =
  [
    ( "numerics.sparse",
      [
        case "CSR create validation" test_sparse_create_validation;
        case "CSR accessors" test_sparse_accessors;
        case "of_dense with pattern" test_sparse_of_dense_pattern;
        case "zero-dimension contract" test_zero_dim_contract;
        case "Sherman-Morrison rank-1 solve" test_solve_rank1;
        case "sparse eigensolvers + deflation" test_eigen_sparse;
      ] );
    ( "core.sparse_jacobian",
      [
        case "backward guard regression (bugfix)" test_backward_guard_regression;
        case "multi-parking-lot pattern and groups" test_pattern_multi_parking_lot;
        case "dense-pattern fallback" test_pattern_dense_fallback;
        case "grouped FD == dense, bit for bit" test_grouped_fd_bit_identical;
        case "update_flow == rebuild under churn" test_update_flow_random_churn;
        case "update_fair == fair_masked under churn" test_update_fair_random_churn;
        case "map_rows matches step" test_map_rows_matches_step;
        case "struct_tol threading (bugfix)" test_struct_tol_threading;
        case "warm-cache replay of new tiers" test_cache_replay_new_tiers;
      ] );
  ]
